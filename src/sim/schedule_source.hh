/**
 * @file
 * Uniform preview interface over the three seeded injector schedules.
 *
 * FaultInjector, ElasticScheduler, and IngestScheduler each expose a
 * deterministic static schedule() preview, but with three different
 * signatures (FaultTargets vs ElasticTargets vs none) and three event
 * types. A fleet driver that wants to merge every disturbance onto the
 * shared core timeline would need per-subsystem glue for each; this
 * header unifies them behind one ScheduleSource interface with a
 * consistent static schedule(config, targets, horizon) shape.
 *
 * Previews are pure: they enumerate what arm() *will* play without
 * touching an event queue, so calling them never perturbs a run.
 */

#ifndef TRAINBOX_SIM_SCHEDULE_SOURCE_HH
#define TRAINBOX_SIM_SCHEDULE_SOURCE_HH

#include <memory>
#include <string>
#include <vector>

#include "common/units.hh"
#include "sim/elastic_schedule.hh"
#include "sim/fault_injector.hh"
#include "sim/ingest.hh"

namespace tb {

/**
 * Target-space sizes a schedule picks victims from. Superset of the
 * per-subsystem target structs; sources ignore the fields they don't
 * use (ingest uses none).
 */
struct ScheduleTargets
{
    std::size_t numSsds = 0;
    std::size_t numGroups = 0;
    std::size_t numHosts = 0;
};

/** One previewed disturbance on the shared timeline. */
struct SchedulePreviewEntry
{
    /** When the disturbance starts. */
    Time at = 0.0;

    /** Originating subsystem: "fault", "elastic", or "ingest". */
    std::string source;

    /** Human-readable description ("ssd_degrade ssd3 for 2.5s", ...). */
    std::string label;
};

/**
 * A subsystem whose seeded disturbance schedule can be previewed.
 * Concrete sources wrap one injector config; the fleet driver holds a
 * list of these (one set per job) and merges their previews.
 */
class ScheduleSource
{
  public:
    virtual ~ScheduleSource() = default;

    /** Subsystem name ("fault", "elastic", "ingest"). */
    virtual const char *name() const = 0;

    /** False when the wrapped config schedules nothing. */
    virtual bool enabled() const = 0;

    /** Enumerate the disturbances in [0, horizon), in time order. */
    virtual std::vector<SchedulePreviewEntry>
    preview(const ScheduleTargets &targets, Time horizon) const = 0;
};

/** Preview adapter over FaultInjector::schedule(). */
class FaultScheduleSource final : public ScheduleSource
{
  public:
    explicit FaultScheduleSource(const FaultConfig &cfg) : cfg_(cfg) {}

    const char *name() const override { return "fault"; }
    bool enabled() const override { return cfg_.enabled; }
    std::vector<SchedulePreviewEntry>
    preview(const ScheduleTargets &targets, Time horizon) const override;

    /** Uniform static shape shared by all three sources. */
    static std::vector<SchedulePreviewEntry>
    schedule(const FaultConfig &cfg, const ScheduleTargets &targets,
             Time horizon);

  private:
    FaultConfig cfg_;
};

/** Preview adapter over ElasticScheduler::schedule(). */
class ElasticScheduleSource final : public ScheduleSource
{
  public:
    explicit ElasticScheduleSource(const ElasticityConfig &cfg) : cfg_(cfg) {}

    const char *name() const override { return "elastic"; }
    bool enabled() const override { return cfg_.enabled && cfg_.anyEvents(); }
    std::vector<SchedulePreviewEntry>
    preview(const ScheduleTargets &targets, Time horizon) const override;

    static std::vector<SchedulePreviewEntry>
    schedule(const ElasticityConfig &cfg, const ScheduleTargets &targets,
             Time horizon);

  private:
    ElasticityConfig cfg_;
};

/** Preview adapter over IngestScheduler::schedule(). */
class IngestScheduleSource final : public ScheduleSource
{
  public:
    explicit IngestScheduleSource(const IngestConfig &cfg) : cfg_(cfg) {}

    const char *name() const override { return "ingest"; }
    bool enabled() const override { return cfg_.enabled && cfg_.anyArrivals(); }
    std::vector<SchedulePreviewEntry>
    preview(const ScheduleTargets &targets, Time horizon) const override;

    static std::vector<SchedulePreviewEntry>
    schedule(const IngestConfig &cfg, const ScheduleTargets &targets,
             Time horizon);

  private:
    IngestConfig cfg_;
};

/** Preview adapter over FleetFaultInjector::schedule(). */
class FleetFaultScheduleSource final : public ScheduleSource
{
  public:
    explicit FleetFaultScheduleSource(const FleetFaultConfig &cfg)
        : cfg_(cfg)
    {
    }

    const char *name() const override { return "fleet"; }
    bool enabled() const override { return cfg_.enabled; }
    std::vector<SchedulePreviewEntry>
    preview(const ScheduleTargets &targets, Time horizon) const override;

    static std::vector<SchedulePreviewEntry>
    schedule(const FleetFaultConfig &cfg, const ScheduleTargets &targets,
             Time horizon);

  private:
    FleetFaultConfig cfg_;
};

/**
 * Merge the previews of several sources into one time-sorted timeline.
 * Ties keep source-registration order (stable merge), so the result is
 * deterministic for a fixed source list.
 */
std::vector<SchedulePreviewEntry>
mergedSchedule(const std::vector<const ScheduleSource *> &sources,
               const ScheduleTargets &targets, Time horizon);

/** Convenience overload: one job's three configs, merged. */
std::vector<SchedulePreviewEntry>
mergedSchedule(const FaultConfig &faults, const ElasticityConfig &elastic,
               const IngestConfig &ingest, const ScheduleTargets &targets,
               Time horizon);

} // namespace tb

#endif // TRAINBOX_SIM_SCHEDULE_SOURCE_HH
