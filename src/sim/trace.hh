/**
 * @file
 * Chrome-trace (about://tracing / Perfetto) event writer.
 *
 * The training session can record every prep stage, compute span, and
 * sync span into a TraceWriter; the JSON it emits loads directly into
 * chrome://tracing or ui.perfetto.dev, giving the same kind of timeline
 * the paper's latency-decomposition figures summarize.
 */

#ifndef TRAINBOX_SIM_TRACE_HH
#define TRAINBOX_SIM_TRACE_HH

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/units.hh"

namespace tb {

/** Collects duration events and serializes Chrome trace JSON. */
class TraceWriter
{
  public:
    /**
     * Record a complete span ("X" event) on a named track.
     * Times are simulation seconds; emitted as microseconds.
     */
    void complete(const std::string &track, const std::string &name,
                  Time start, Time duration,
                  const std::string &category = "sim");

    /** Record an instant event. */
    void instant(const std::string &track, const std::string &name,
                 Time when, const std::string &category = "sim");

    /** Record a counter sample ("C" event) — a stepped value track. */
    void counter(const std::string &track, const std::string &name,
                 Time when, double value);

    /** Number of recorded events. */
    std::size_t numEvents() const { return events_.size(); }

    /** Serialize to Chrome trace JSON (traceEvents array form). */
    std::string toJson() const;

    /** Write JSON to a file; returns false on I/O failure. */
    bool writeFile(const std::string &path) const;

    /** Drop all events. */
    void clear();

  private:
    struct Event
    {
        char phase;   // 'X', 'i', or 'C'
        std::string name;
        std::string category;
        int track;
        Time start;
        Time duration; // counter value for 'C' events
    };

    int trackId(const std::string &track);

    std::map<std::string, int> tracks_;
    std::vector<Event> events_;
};

} // namespace tb

#endif // TRAINBOX_SIM_TRACE_HH
