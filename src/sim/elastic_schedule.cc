#include "sim/elastic_schedule.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace tb {

namespace {

/** splitmix64 finalizer — derives unrelated streams from one seed. */
std::uint64_t
mix64(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Per-class stream tags (keep stable: they define the timelines). */
constexpr std::uint64_t kElasticStream = 0x454c415354ull;

std::uint64_t
classStreamTag(ElasticTargetKind target, bool planned)
{
    return kElasticStream + 2 * static_cast<std::uint64_t>(target) +
           (planned ? 0 : 1);
}

} // namespace

const char *
elasticTargetKindName(ElasticTargetKind kind)
{
    switch (kind) {
      case ElasticTargetKind::Group:
        return "group";
      case ElasticTargetKind::Prep:
        return "prep";
    }
    return "unknown";
}

const char *
elasticActionName(ElasticAction action)
{
    switch (action) {
      case ElasticAction::Drain:
        return "drain";
      case ElasticAction::Preempt:
        return "preempt";
      case ElasticAction::Join:
        return "join";
    }
    return "unknown";
}

ElasticScheduler::ElasticScheduler(const ElasticityConfig &cfg,
                                   const ElasticTargets &targets)
    : cfg_(cfg), targets_(targets), classes_(makeClasses(cfg, targets))
{
    panic_if(cfg_.graceWindow < 0.0,
             "elasticity.graceWindow must be >= 0, got %g",
             cfg_.graceWindow);
    panic_if(cfg_.rejoinLatency < 0.0,
             "elasticity.rejoinLatency must be >= 0, got %g",
             cfg_.rejoinLatency);
    panic_if(cfg_.deferredJoinGroups >= targets.numGroups &&
                 cfg_.deferredJoinGroups > 0,
             "elasticity.deferredJoinGroups (%zu) must leave at least "
             "one of the %zu groups active",
             cfg_.deferredJoinGroups, targets.numGroups);
}

std::vector<ElasticScheduler::ClassState>
ElasticScheduler::makeClasses(const ElasticityConfig &cfg,
                              const ElasticTargets &targets)
{
    std::vector<ClassState> classes;
    auto add = [&](ElasticTargetKind target, bool planned,
                   const ElasticClassConfig &cc) {
        if (cc.ratePerSec <= 0.0 || targets.numGroups == 0)
            return;
        ClassState cs{target,
                      planned,
                      cc,
                      targets.numGroups,
                      planned ? cfg.graceWindow : 0.0,
                      Rng(mix64(cfg.seed ^ classStreamTag(target, planned))),
                      0.0};
        classes.push_back(std::move(cs));
    };
    add(ElasticTargetKind::Group, /*planned=*/true, cfg.groupDrain);
    add(ElasticTargetKind::Group, /*planned=*/false, cfg.groupPreempt);
    add(ElasticTargetKind::Prep, /*planned=*/true, cfg.prepDrain);
    add(ElasticTargetKind::Prep, /*planned=*/false, cfg.prepPreempt);
    return classes;
}

std::pair<ElasticEvent, ElasticEvent>
ElasticScheduler::nextPair(ClassState &cs)
{
    // Exponential inter-arrival measured from the previous join, so one
    // class never re-targets a member it has not yet returned.
    const double u = cs.rng.uniform();
    const Time gap = -std::log(1.0 - u) / cs.cfg.ratePerSec;
    ElasticEvent leave;
    leave.target = cs.target;
    leave.action =
        cs.planned ? ElasticAction::Drain : ElasticAction::Preempt;
    leave.index = static_cast<std::size_t>(cs.rng.uniformInt(
        0, static_cast<std::int64_t>(cs.numTargets) - 1));
    leave.at = cs.prevEnd + gap;

    ElasticEvent join = leave;
    join.action = ElasticAction::Join;
    join.at = leave.at + cs.grace + cs.cfg.absence;
    cs.prevEnd = join.at;
    return {leave, join};
}

std::vector<ElasticEvent>
ElasticScheduler::fixedEvents(const ElasticityConfig &cfg,
                              const ElasticTargets &targets)
{
    std::vector<ElasticEvent> events = cfg.schedule;
    // Scale-up: the deferred groups (end of the group list) join at
    // scaleUpTime. Their initial detachment is session state, not an
    // event.
    for (std::size_t i = 0; i < cfg.deferredJoinGroups &&
                            i < targets.numGroups;
         ++i) {
        ElasticEvent ev;
        ev.target = ElasticTargetKind::Group;
        ev.action = ElasticAction::Join;
        ev.index = targets.numGroups - 1 - i;
        ev.at = cfg.scaleUpTime;
        events.push_back(ev);
    }
    return events;
}

void
ElasticScheduler::deliver(const ElasticEvent &ev)
{
    ++delivered_;
    if (handler_)
        handler_(ev);
}

void
ElasticScheduler::scheduleClass(EventQueue &eq, std::size_t idx)
{
    ClassState &cs = classes_[idx];
    const auto [leave, join] = nextPair(cs);
    eq.schedule(origin_ + leave.at, [this, &eq, idx, leave, join] {
        deliver(leave);
        eq.schedule(origin_ + join.at, [this, join] { deliver(join); });
        // Chain the class's next pair (drawn lazily so the timeline
        // extends as far as the simulation runs).
        scheduleClass(eq, idx);
    });
}

void
ElasticScheduler::arm(EventQueue &eq, Handler handler)
{
    handler_ = std::move(handler);
    // Anchor the job-relative schedule at the current clock (0 for the
    // historical standalone run, so x + 0.0 leaves every time exact).
    origin_ = eq.now();
    for (const ElasticEvent &ev : fixedEvents(cfg_, targets_))
        eq.schedule(origin_ + ev.at, [this, ev] { deliver(ev); });
    for (std::size_t i = 0; i < classes_.size(); ++i)
        scheduleClass(eq, i);
}

std::vector<ElasticEvent>
ElasticScheduler::schedule(const ElasticityConfig &cfg,
                           const ElasticTargets &targets, Time horizon)
{
    std::vector<ElasticEvent> events;
    for (const ElasticEvent &ev : fixedEvents(cfg, targets))
        if (ev.at < horizon)
            events.push_back(ev);
    for (ClassState &cs : makeClasses(cfg, targets)) {
        while (true) {
            const auto [leave, join] = nextPair(cs);
            if (leave.at >= horizon)
                break;
            events.push_back(leave);
            if (join.at < horizon)
                events.push_back(join);
        }
    }
    // Merge into global time order (stable for identical timestamps:
    // fixed events first, then class declaration order).
    std::stable_sort(events.begin(), events.end(),
                     [](const ElasticEvent &a, const ElasticEvent &b) {
                         return a.at < b.at;
                     });
    return events;
}

} // namespace tb
