#include "sim/stats.hh"

#include <cmath>

namespace tb {
namespace stats {

void
Distribution::sample(double v)
{
    ++count_;
    sum_ += v;
    sumSq_ += v * v;
    if (v < min_)
        min_ = v;
    if (v > max_)
        max_ = v;
}

double
Distribution::stddev() const
{
    if (count_ == 0)
        return 0.0;
    const double m = mean();
    const double var = sumSq_ / count_ - m * m;
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

void
Distribution::reset()
{
    count_ = 0;
    sum_ = 0.0;
    sumSq_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
}

void
StatGroup::registerScalar(const std::string &name, Scalar *stat,
                          const std::string &desc)
{
    scalars_.push_back({name, stat, desc});
}

void
StatGroup::registerDistribution(const std::string &name, Distribution *stat,
                                const std::string &desc)
{
    dists_.push_back({name, stat, desc});
}

void
StatGroup::dump(std::FILE *out) const
{
    for (const auto &e : scalars_) {
        std::fprintf(out, "%s.%s %.6g", name_.c_str(), e.name.c_str(),
                     e.stat->value());
        if (!e.desc.empty())
            std::fprintf(out, " # %s", e.desc.c_str());
        std::fputc('\n', out);
    }
    for (const auto &e : dists_) {
        std::fprintf(out,
                     "%s.%s mean=%.6g min=%.6g max=%.6g sd=%.6g n=%zu",
                     name_.c_str(), e.name.c_str(), e.stat->mean(),
                     e.stat->minimum(), e.stat->maximum(),
                     e.stat->stddev(), e.stat->count());
        if (!e.desc.empty())
            std::fprintf(out, " # %s", e.desc.c_str());
        std::fputc('\n', out);
    }
}

void
StatGroup::resetAll()
{
    for (auto &e : scalars_)
        e.stat->reset();
    for (auto &e : dists_)
        e.stat->reset();
}

} // namespace stats
} // namespace tb
