#include "sim/fault_injector.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace tb {

namespace {

/** splitmix64 finalizer — derives unrelated streams from one seed. */
std::uint64_t
mix64(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Per-class stream tags (keep stable: they define the schedules). */
constexpr std::uint64_t kReadFailStream = 0x5245414446ull;
constexpr std::uint64_t kStragglerStream = 0x5354524147ull;
constexpr std::uint64_t kCorruptionStream = 0x434f525255ull;

std::uint64_t
corruptionStreamTag(CorruptionKind kind)
{
    return kCorruptionStream + static_cast<std::uint64_t>(kind);
}

std::uint64_t
classStreamTag(FaultKind kind)
{
    return 0x57494e444f57ull + static_cast<std::uint64_t>(kind);
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::SsdDegrade:
        return "ssd_degrade";
      case FaultKind::PrepCrash:
        return "prep_crash";
      case FaultKind::EthDegrade:
        return "eth_degrade";
      case FaultKind::RouteLoss:
        return "route_loss";
      case FaultKind::FatalCrash:
        return "fatal_crash";
    }
    return "unknown";
}

const char *
corruptionKindName(CorruptionKind kind)
{
    switch (kind) {
      case CorruptionKind::SsdBitFlip:
        return "ssd_bit_flip";
      case CorruptionKind::PcieLinkError:
        return "pcie_link_error";
      case CorruptionKind::FpgaUpset:
        return "fpga_upset";
      case CorruptionKind::HostDramFlip:
        return "host_dram_flip";
    }
    return "unknown";
}

FaultInjector::FaultInjector(const FaultConfig &cfg,
                             const FaultTargets &targets)
    : cfg_(cfg),
      targets_(targets),
      readFailRng_(mix64(cfg.seed ^ kReadFailStream)),
      classes_(makeClasses(cfg, targets))
{
    panic_if(cfg_.ssdReadFailureProb < 0.0 ||
                 cfg_.ssdReadFailureProb >= 1.0,
             "ssdReadFailureProb must be in [0, 1), got %g",
             cfg_.ssdReadFailureProb);
    panic_if(cfg_.stragglerFactor < 1.0,
             "stragglerFactor must be >= 1, got %g", cfg_.stragglerFactor);
    for (std::size_t k = 0; k < kNumCorruptionKinds; ++k) {
        const auto kind = static_cast<CorruptionKind>(k);
        const double p = cfg_.corruption.probFor(kind);
        panic_if(p < 0.0 || p >= 1.0,
                 "corruption probability for %s must be in [0, 1), got %g",
                 corruptionKindName(kind), p);
        corruptionRngs_[k] = Rng(mix64(cfg.seed ^ corruptionStreamTag(kind)));
    }
    panic_if(cfg_.corruption.pcieReplayLatency < 0.0,
             "pcieReplayLatency must be >= 0, got %g",
             cfg_.corruption.pcieReplayLatency);
}

std::vector<FaultInjector::ClassState>
FaultInjector::makeClasses(const FaultConfig &cfg,
                           const FaultTargets &targets)
{
    std::vector<ClassState> classes;
    auto add = [&](FaultKind kind, const FaultClassConfig &cc,
                   std::size_t n_targets) {
        if (cc.ratePerSec <= 0.0 || cc.duration <= 0.0 || n_targets == 0)
            return;
        ClassState cs{kind, cc, n_targets,
                      Rng(mix64(cfg.seed ^ classStreamTag(kind))), 0.0};
        classes.push_back(std::move(cs));
    };
    add(FaultKind::SsdDegrade, cfg.ssdDegrade, targets.numSsds);
    add(FaultKind::PrepCrash, cfg.prepCrash, targets.numGroups);
    add(FaultKind::EthDegrade, cfg.ethDegrade, 1);
    add(FaultKind::RouteLoss, cfg.routeLoss, targets.numGroups);
    // Fatal crashes are point events: the configured duration is
    // ignored (forced to 0) so arrivals stay a Poisson process with
    // MTBF = 1/rate regardless of what the scenario struct says.
    if (cfg.fatalCrash.ratePerSec > 0.0) {
        FaultClassConfig fatal = cfg.fatalCrash;
        fatal.duration = 0.0;
        fatal.magnitude = 0.0;
        classes.push_back(ClassState{
            FaultKind::FatalCrash, fatal, 1,
            Rng(mix64(cfg.seed ^ classStreamTag(FaultKind::FatalCrash))),
            0.0});
    }
    return classes;
}

FaultEvent
FaultInjector::nextEvent(ClassState &cs)
{
    // Exponential inter-arrival measured from the end of the previous
    // window, so windows of one class never overlap.
    const double u = cs.rng.uniform();
    const Time gap = -std::log(1.0 - u) / cs.cfg.ratePerSec;
    FaultEvent ev;
    ev.kind = cs.kind;
    ev.target = static_cast<std::size_t>(cs.rng.uniformInt(
        0, static_cast<std::int64_t>(cs.numTargets) - 1));
    ev.start = cs.prevEnd + gap;
    ev.duration = cs.cfg.duration;
    ev.magnitude = cs.cfg.magnitude;
    cs.prevEnd = ev.start + ev.duration;
    return ev;
}

bool
FaultInjector::ssdReadAttemptFails()
{
    if (cfg_.ssdReadFailureProb <= 0.0)
        return false;
    const bool fails = readFailRng_.uniform() < cfg_.ssdReadFailureProb;
    if (fails)
        ++readFailures_;
    return fails;
}

bool
FaultInjector::corruptionStrikes(CorruptionKind kind)
{
    const double p = cfg_.corruption.probFor(kind);
    if (p <= 0.0)
        return false;
    const auto k = static_cast<std::size_t>(kind);
    const bool strikes = corruptionRngs_[k].uniform() < p;
    if (strikes)
        ++corruptions_[k];
    return strikes;
}

std::size_t
FaultInjector::corruptionsInjected() const
{
    std::size_t total = 0;
    for (std::size_t n : corruptions_)
        total += n;
    return total;
}

double
FaultInjector::stragglerFactor(std::size_t group, std::size_t step) const
{
    if (cfg_.stragglerProb <= 0.0)
        return 1.0;
    const std::uint64_t h = mix64(
        cfg_.seed ^ kStragglerStream ^
        mix64(group * 0x9e3779b97f4a7c15ull + step + 1));
    const double u =
        static_cast<double>(h >> 11) * 0x1.0p-53; // uniform in [0, 1)
    return u < cfg_.stragglerProb ? cfg_.stragglerFactor : 1.0;
}

void
FaultInjector::scheduleClass(EventQueue &eq, std::size_t idx)
{
    ClassState &cs = classes_[idx];
    const FaultEvent ev = nextEvent(cs);
    eq.schedule(origin_ + ev.start, [this, &eq, idx, ev] {
        ++faultsInjected_;
        if (onFault_)
            onFault_(ev);
        eq.schedule(origin_ + ev.start + ev.duration, [this, ev] {
            if (onRepair_)
                onRepair_(ev);
        });
        // Chain the class's next window (drawn lazily so the schedule
        // extends as far as the simulation runs).
        scheduleClass(eq, idx);
    });
}

void
FaultInjector::arm(EventQueue &eq, FaultHandler onFault,
                   FaultHandler onRepair)
{
    onFault_ = std::move(onFault);
    onRepair_ = std::move(onRepair);
    // Anchor the job-relative schedule at the current clock (0 for the
    // historical standalone run, so x + 0.0 leaves every time exact).
    origin_ = eq.now();
    for (std::size_t i = 0; i < classes_.size(); ++i)
        scheduleClass(eq, i);
}

std::vector<FaultEvent>
FaultInjector::schedule(const FaultConfig &cfg, const FaultTargets &targets,
                        Time horizon)
{
    std::vector<FaultEvent> events;
    for (ClassState &cs : makeClasses(cfg, targets)) {
        while (true) {
            const FaultEvent ev = nextEvent(cs);
            if (ev.start >= horizon)
                break;
            events.push_back(ev);
        }
    }
    // Merge the per-class streams into global time order (stable for
    // identical timestamps: class declaration order).
    std::stable_sort(events.begin(), events.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.start < b.start;
                     });
    return events;
}

// --- fleet-level faults -------------------------------------------------

namespace {

std::uint64_t
fleetClassStreamTag(FleetFaultKind kind)
{
    return 0x464c454554ull + static_cast<std::uint64_t>(kind);
}

} // namespace

const char *
fleetFaultKindName(FleetFaultKind kind)
{
    switch (kind) {
      case FleetFaultKind::HostOutage:
        return "host_outage";
      case FleetFaultKind::BoxLoss:
        return "box_loss";
      case FleetFaultKind::PoolPartition:
        return "pool_partition";
    }
    return "unknown";
}

std::vector<FleetFaultEvent>
FleetFaultInjector::schedule(const FleetFaultConfig &cfg,
                             std::size_t numHosts, Time horizon)
{
    std::vector<FleetFaultEvent> events;
    if (!cfg.enabled)
        return events;
    // Scripted windows first: they sort ahead of same-instant seeded
    // windows, so a hand-written scenario always plays as written.
    events = cfg.schedule;
    // Seeded streams: exponential inter-arrival from the previous
    // window's *end* (per-class windows never overlap), aggregate rate
    // numTargets / mtbf, uniform victim. Bounded by the horizon — fleet
    // validation requires horizon > 0 when any class is active.
    auto addClass = [&](FleetFaultKind kind, const FleetFaultClassConfig &cc,
                        std::size_t n_targets, std::size_t units) {
        if (cc.mtbf <= 0.0 || n_targets == 0 || horizon <= 0.0)
            return;
        Rng rng(mix64(cfg.seed ^ fleetClassStreamTag(kind)));
        const double rate = static_cast<double>(n_targets) / cc.mtbf;
        Time prev_end = 0.0;
        while (true) {
            const double u = rng.uniform();
            const Time start = prev_end - std::log(1.0 - u) / rate;
            if (start >= horizon)
                break;
            FleetFaultEvent ev;
            ev.kind = kind;
            ev.host = static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(n_targets) - 1));
            ev.start = start;
            ev.duration = cc.mttr;
            ev.units = units;
            prev_end = ev.start + ev.duration;
            events.push_back(ev);
        }
    };
    addClass(FleetFaultKind::HostOutage, cfg.hostOutage, numHosts, 1);
    addClass(FleetFaultKind::BoxLoss, cfg.boxLoss, numHosts,
             cfg.boxLossUnits);
    addClass(FleetFaultKind::PoolPartition, cfg.poolPartition, 1,
             cfg.poolPartitionFpgas);
    std::stable_sort(events.begin(), events.end(),
                     [](const FleetFaultEvent &a, const FleetFaultEvent &b) {
                         return a.start < b.start;
                     });
    return events;
}

FleetFaultInjector::FleetFaultInjector(const FleetFaultConfig &cfg,
                                       std::size_t numHosts, Time horizon)
    : events_(schedule(cfg, numHosts, horizon))
{
}

void
FleetFaultInjector::arm(EventQueue &eq, Handler onFault, Handler onRepair)
{
    onFault_ = std::move(onFault);
    onRepair_ = std::move(onRepair);
    // The whole schedule is known upfront, so play it eagerly. Each
    // fault schedules its own repair from inside its callback: a
    // zero-length window then still runs fault before repair (the
    // repair's sequence number is necessarily larger).
    const Time origin = eq.now();
    for (std::size_t i = 0; i < events_.size(); ++i) {
        const FleetFaultEvent ev = events_[i];
        eq.schedule(origin + ev.start, [this, &eq, origin, ev, i] {
            ++faultsInjected_;
            if (onFault_)
                onFault_(ev, i);
            eq.schedule(origin + ev.start + ev.duration, [this, ev, i] {
                if (onRepair_)
                    onRepair_(ev, i);
            });
        });
    }
}

} // namespace tb
