/**
 * @file
 * Model-synchronization latency models (§II-B, Fig 2b).
 *
 * The paper assumes NVLink-class accelerator interconnects and ring-based
 * reduction, whose latency saturates at roughly twice the two-device
 * latency. We model a chunked pipelined ring plus, for the bottleneck-shift
 * study (Fig 3), the slower alternatives it displaced: binomial-tree
 * reduction and a parameter-server exchange over a shared link.
 */

#ifndef TRAINBOX_SYNC_SYNC_MODEL_HH
#define TRAINBOX_SYNC_SYNC_MODEL_HH

#include <cstddef>

#include "common/units.hh"

namespace tb {
namespace sync {

/** Synchronization algorithm. */
enum class Algorithm { Ring, Tree, ParameterServer };

/** Parameters of the accelerator interconnect used for synchronization. */
struct SyncConfig
{
    /** Per-link bandwidth in bytes/s (NVLink-like: 150 GB/s effective). */
    Rate linkBandwidth = 150.0e9;

    /** Per-hop latency (switch traversal + protocol) in seconds. */
    Time hopLatency = 0.3e-6;

    /** Ring chunk size in bytes (the paper's Fig 2b uses 4 KiB). */
    Bytes chunkBytes = 4096.0;

    Algorithm algorithm = Algorithm::Ring;
};

/**
 * Latency of synchronizing @p modelBytes of gradients across @p n devices.
 * Returns 0 for n <= 1.
 */
Time syncLatency(const SyncConfig &cfg, std::size_t n, Bytes modelBytes);

/**
 * Fig 2b's quantity: syncLatency(n) / syncLatency(2). Returns 1 for n < 2.
 */
double normalizedSyncLatency(const SyncConfig &cfg, std::size_t n,
                             Bytes modelBytes);

} // namespace sync
} // namespace tb

#endif // TRAINBOX_SYNC_SYNC_MODEL_HH
