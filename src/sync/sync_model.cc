#include "sync/sync_model.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/math_util.hh"

namespace tb {
namespace sync {

namespace {

Time
ringLatency(const SyncConfig &cfg, std::size_t n, Bytes model_bytes)
{
    // Chunked pipelined ring: 2(n-1) steps; each step moves one segment of
    // model/n bytes per device, itself pipelined in chunks. Steady-state
    // volume term: 2(n-1)/n * M / B. Pipeline/latency term: every step
    // pays one hop plus one chunk serialization to fill the pipe.
    const double steps = 2.0 * static_cast<double>(n - 1);
    const double volume =
        steps / static_cast<double>(n) * model_bytes / cfg.linkBandwidth;
    const double per_step =
        cfg.hopLatency + cfg.chunkBytes / cfg.linkBandwidth;
    return volume + steps * per_step;
}

Time
treeLatency(const SyncConfig &cfg, std::size_t n, Bytes model_bytes)
{
    // Reduce + broadcast over a binomial tree: 2*ceil(log2 n) serial
    // phases, each moving the full model over one link.
    const double phases =
        2.0 * std::ceil(std::log2(static_cast<double>(n)));
    return phases * (model_bytes / cfg.linkBandwidth + cfg.hopLatency);
}

Time
parameterServerLatency(const SyncConfig &cfg, std::size_t n,
                       Bytes model_bytes)
{
    // Every device pushes gradients to and pulls parameters from one
    // server across a shared link: 2 n M / B, fully serialized at the
    // server's port.
    return 2.0 * static_cast<double>(n) * model_bytes / cfg.linkBandwidth +
           2.0 * cfg.hopLatency;
}

} // namespace

Time
syncLatency(const SyncConfig &cfg, std::size_t n, Bytes model_bytes)
{
    panic_if(model_bytes < 0.0, "negative model size");
    if (n <= 1 || model_bytes == 0.0)
        return 0.0;
    switch (cfg.algorithm) {
      case Algorithm::Ring:
        return ringLatency(cfg, n, model_bytes);
      case Algorithm::Tree:
        return treeLatency(cfg, n, model_bytes);
      case Algorithm::ParameterServer:
        return parameterServerLatency(cfg, n, model_bytes);
    }
    panic("unknown sync algorithm");
}

double
normalizedSyncLatency(const SyncConfig &cfg, std::size_t n,
                      Bytes model_bytes)
{
    if (n < 2)
        return 1.0;
    return syncLatency(cfg, n, model_bytes) /
           syncLatency(cfg, 2, model_bytes);
}

} // namespace sync
} // namespace tb
