#include "sync/ring_allreduce.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/math_util.hh"

namespace tb {
namespace sync {

namespace {

/** [begin, end) element range of chunk @p c when splitting @p len n ways. */
std::pair<std::size_t, std::size_t>
chunkRange(std::size_t len, std::size_t n, std::size_t c)
{
    const std::size_t base = len / n;
    const std::size_t extra = len % n;
    const std::size_t begin = c * base + std::min(c, extra);
    const std::size_t size = base + (c < extra ? 1 : 0);
    return {begin, begin + size};
}

} // namespace

AllReduceStats
ringAllReduce(std::vector<std::vector<float>> &buffers)
{
    AllReduceStats stats;
    const std::size_t n = buffers.size();
    if (n <= 1)
        return stats;

    const std::size_t len = buffers[0].size();
    for (const auto &b : buffers)
        panic_if(b.size() != len, "ring all-reduce with ragged buffers");

    // Reduce-scatter: after n-1 steps device i holds the full sum of
    // chunk (i+1) mod n.
    for (std::size_t s = 0; s < n - 1; ++s) {
        // All devices act simultaneously in a real ring; sequential
        // emulation is safe because each step's source chunk on the
        // sender is not written by any other device in the same step.
        std::vector<std::vector<float>> staged(n);
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t c = (i + n - s) % n;
            auto [b, e] = chunkRange(len, n, c);
            staged[i].assign(buffers[i].begin() + b, buffers[i].begin() + e);
            stats.elementsSentPerDevice += (e - b) / 1;
        }
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t dst = (i + 1) % n;
            const std::size_t c = (i + n - s) % n;
            auto [b, e] = chunkRange(len, n, c);
            for (std::size_t k = b; k < e; ++k)
                buffers[dst][k] += staged[i][k - b];
        }
        ++stats.steps;
    }

    // All-gather: circulate the fully reduced chunks.
    for (std::size_t s = 0; s < n - 1; ++s) {
        std::vector<std::vector<float>> staged(n);
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t c = (i + 1 + n - s) % n;
            auto [b, e] = chunkRange(len, n, c);
            staged[i].assign(buffers[i].begin() + b, buffers[i].begin() + e);
            stats.elementsSentPerDevice += (e - b);
        }
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t dst = (i + 1) % n;
            const std::size_t c = (i + 1 + n - s) % n;
            auto [b, e] = chunkRange(len, n, c);
            std::copy(staged[i].begin(), staged[i].end(),
                      buffers[dst].begin() + b);
        }
        ++stats.steps;
    }

    // elementsSentPerDevice accumulated over all devices; normalize.
    stats.elementsSentPerDevice /= n;
    return stats;
}

AllReduceStats
treeAllReduce(std::vector<std::vector<float>> &buffers)
{
    AllReduceStats stats;
    const std::size_t n = buffers.size();
    if (n <= 1)
        return stats;

    const std::size_t len = buffers[0].size();
    for (const auto &b : buffers)
        panic_if(b.size() != len, "tree all-reduce with ragged buffers");

    // Binomial reduce toward device 0.
    for (std::size_t stride = 1; stride < n; stride *= 2) {
        for (std::size_t i = 0; i + stride < n; i += 2 * stride) {
            const std::size_t src = i + stride;
            for (std::size_t k = 0; k < len; ++k)
                buffers[i][k] += buffers[src][k];
            stats.elementsSentPerDevice += len;
        }
        ++stats.steps;
    }
    // Broadcast back.
    std::size_t height = 0;
    for (std::size_t s = 1; s < n; s *= 2)
        ++height;
    for (std::size_t level = height; level-- > 0;) {
        const std::size_t stride = std::size_t{1} << level;
        for (std::size_t i = 0; i + stride < n; i += 2 * stride) {
            buffers[i + stride] = buffers[i];
            stats.elementsSentPerDevice += len;
        }
        ++stats.steps;
    }
    stats.elementsSentPerDevice /= n;
    return stats;
}

} // namespace sync
} // namespace tb
