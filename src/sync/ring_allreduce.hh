/**
 * @file
 * Functional ring all-reduce.
 *
 * Executes the exact reduce-scatter + all-gather schedule NCCL-style ring
 * reduction uses (§II-B of the paper) over in-memory per-device buffers,
 * so tests can verify both the arithmetic (every device ends with the
 * global sum) and the communication volume (2(n-1)/n of the model size
 * sent per device — the reason ring sync latency saturates at 2x, Fig 2b).
 */

#ifndef TRAINBOX_SYNC_RING_ALLREDUCE_HH
#define TRAINBOX_SYNC_RING_ALLREDUCE_HH

#include <cstddef>
#include <vector>

namespace tb {
namespace sync {

/** Communication volume bookkeeping for one all-reduce. */
struct AllReduceStats
{
    /** Ring steps executed (2(n-1) for a ring). */
    std::size_t steps = 0;
    /** Elements sent by each device over the whole operation. */
    std::size_t elementsSentPerDevice = 0;
};

/**
 * In-place ring all-reduce (sum) across device buffers.
 *
 * @param buffers one buffer per device; all must have equal length.
 * @return communication statistics.
 */
AllReduceStats ringAllReduce(std::vector<std::vector<float>> &buffers);

/**
 * In-place binomial-tree all-reduce (reduce to device 0, broadcast back).
 * Used as the non-scalable comparison point.
 */
AllReduceStats treeAllReduce(std::vector<std::vector<float>> &buffers);

} // namespace sync
} // namespace tb

#endif // TRAINBOX_SYNC_RING_ALLREDUCE_HH
