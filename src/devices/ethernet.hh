/**
 * @file
 * Prep-pool Ethernet network (§IV-D, §V-D).
 *
 * A top-of-rack Ethernet switch connects the in-box FPGAs to a pool of
 * extra prep FPGAs. The pool is modeled as: one switch-fabric resource,
 * one 100 Gbps port per pool FPGA, and the pool FPGAs' engine resources.
 * Offloaded prep work flows: box-FPGA eth port -> switch -> pool port ->
 * pool engine -> back (return traffic accounted on the same ports).
 */

#ifndef TRAINBOX_DEVICES_ETHERNET_HH
#define TRAINBOX_DEVICES_ETHERNET_HH

#include <string>
#include <vector>

#include "fluid/fluid.hh"

namespace tb {

/** One pool FPGA reachable over Ethernet. */
struct PoolFpga
{
    std::string name;
    FluidResource *port;   ///< its 100 Gbps link to the switch
    FluidResource *engine; ///< its prep pipeline (samples/s)
};

/** The prep-pool: Ethernet switch + shared FPGAs. */
class PrepPool
{
  public:
    /**
     * @param fabricBw aggregate switch fabric bandwidth
     */
    PrepPool(FluidNetwork &net, const std::string &name,
             Rate fabricBw = 1.6e12);

    /** Add one pool FPGA with the given engine rate (samples/s). */
    PoolFpga &addFpga(Rate engineRate, Rate portBw = 12.5e9);

    FluidResource *fabric() const { return fabric_; }
    const std::vector<PoolFpga> &fpgas() const { return fpgas_; }
    std::size_t size() const { return fpgas_.size(); }

    /** Aggregate engine capacity of the pool (samples/s). */
    Rate totalEngineRate() const;

    /**
     * Scale the switch fabric to @p scale x nominal bandwidth (fault
     * injection: Ethernet degradation windows). 1.0 restores health.
     * Values outside [0, 1] are clamped with a logged warning.
     */
    void setFabricBandwidthScale(double scale);

    /** Current fabric scale (1.0 = healthy). */
    double fabricBandwidthScale() const { return fabricScale_; }

  private:
    FluidNetwork &net_;
    std::string name_;
    FluidResource *fabric_;
    Rate nominalFabricBw_;
    double fabricScale_ = 1.0;
    std::vector<PoolFpga> fpgas_;
};

} // namespace tb

#endif // TRAINBOX_DEVICES_ETHERNET_HH
