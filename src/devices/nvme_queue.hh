/**
 * @file
 * NVMe command / completion queue model (§V-C).
 *
 * The FPGA prep accelerator's P2P handler "implements NVMe command
 * generators, and places NVMe command and completion queues in the FPGA
 * memory", so the FPGA can fetch training data from SSDs without any
 * host involvement. This module models that mechanism functionally:
 * circular submission/completion queues with doorbell semantics and the
 * completion-phase bit, plus an executor that plays the SSD's role —
 * consuming read commands and DMA-ing data from its media to the
 * command's destination address (a peer device BAR under the address
 * map, or host memory).
 */

#ifndef TRAINBOX_DEVICES_NVME_QUEUE_HH
#define TRAINBOX_DEVICES_NVME_QUEUE_HH

#include <cstdint>
#include <functional>
#include <vector>

namespace tb {
namespace nvme {

/** NVMe logical block size used throughout (512 B). */
inline constexpr std::uint32_t kBlockBytes = 512;

/** Subset of the NVMe I/O command set we model. */
enum class Opcode : std::uint8_t { Read = 0x02, Write = 0x01 };

/** One submission-queue entry (the fields the P2P handler fills in). */
struct Command
{
    std::uint16_t cid = 0;     ///< command identifier
    Opcode opcode = Opcode::Read;
    std::uint64_t slba = 0;    ///< starting logical block
    std::uint32_t nlb = 0;     ///< number of logical blocks (0-based +1)
    std::uint64_t prp = 0;     ///< destination/source PCIe address
};

/** One completion-queue entry. */
struct Completion
{
    std::uint16_t cid = 0;
    std::uint16_t status = 0;  ///< 0 = success
    bool phase = false;        ///< phase tag (flips per queue wrap)
};

/** Completion status codes we use. */
inline constexpr std::uint16_t kStatusSuccess = 0x0;
inline constexpr std::uint16_t kStatusLbaOutOfRange = 0x80;

/**
 * A paired submission/completion ring with doorbells — lives "in FPGA
 * memory" for the P2P case. Single producer / single consumer on each
 * ring, as per the spec's per-queue ownership rules.
 */
class QueuePair
{
  public:
    /** @param depth entries per ring (one slot is kept empty). */
    explicit QueuePair(std::size_t depth = 64);

    // --- host/FPGA (driver) side ---

    /** Enqueue a command; false when the submission queue is full. */
    bool submit(const Command &cmd);

    /** Poll one completion (consumes it); false when none pending. */
    bool poll(Completion *out);

    // --- device (SSD controller) side ---

    /** Fetch the next submitted command; false when SQ is empty. */
    bool fetch(Command *out);

    /** Post a completion; false when the completion queue is full. */
    bool postCompletion(std::uint16_t cid, std::uint16_t status);

    // --- introspection ---

    std::size_t depth() const { return depth_; }
    std::size_t submissionsPending() const;
    std::size_t completionsPending() const;
    bool sqFull() const;

  private:
    std::size_t depth_;
    std::vector<Command> sq_;
    std::vector<Completion> cq_;
    // ring indices (free-running, reduced modulo depth on access)
    std::size_t sqTail_ = 0;   // driver writes
    std::size_t sqHead_ = 0;   // device reads
    std::size_t cqTail_ = 0;   // device writes
    std::size_t cqHead_ = 0;   // driver reads
};

/**
 * The SSD controller's execution loop for one queue pair: fetch
 * commands, move data between the drive's media and the fabric via the
 * provided DMA callbacks, post completions.
 */
class SsdCommandExecutor
{
  public:
    /** DMA write toward the fabric: (destination address, bytes). */
    using DmaWrite =
        std::function<void(std::uint64_t, const std::vector<std::uint8_t> &)>;

    /**
     * @param media the drive's contents (LBA 0 starts at offset 0)
     */
    SsdCommandExecutor(QueuePair &qp, std::vector<std::uint8_t> media);

    /**
     * Drain the submission queue, executing every command.
     * @return commands executed.
     */
    std::size_t processAll(const DmaWrite &dma);

    /** Drive capacity in logical blocks. */
    std::uint64_t capacityBlocks() const
    {
        return media_.size() / kBlockBytes;
    }

    const std::vector<std::uint8_t> &media() const { return media_; }

  private:
    QueuePair &qp_;
    std::vector<std::uint8_t> media_;
};

} // namespace nvme
} // namespace tb

#endif // TRAINBOX_DEVICES_NVME_QUEUE_HH
