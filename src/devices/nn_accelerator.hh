/**
 * @file
 * Neural-network accelerator model (TPU-v3-8 class).
 *
 * Compute capability comes from the workload model (Table I throughput at
 * the reference batch, derated at smaller batches); synchronization uses
 * the dedicated accelerator interconnect (sync/sync_model.hh), which is
 * separate from PCIe and never contended by data preparation — exactly the
 * paper's setting. The accelerator's PCIe presence matters only as the
 * sink of prepared batches.
 */

#ifndef TRAINBOX_DEVICES_NN_ACCELERATOR_HH
#define TRAINBOX_DEVICES_NN_ACCELERATOR_HH

#include <string>

#include "pcie/topology.hh"
#include "workload/model_zoo.hh"

namespace tb {

/** One NN accelerator attached to the PCIe tree. */
class NnAccelerator
{
  public:
    NnAccelerator(pcie::Topology &topo, const std::string &name,
                  pcie::NodeId parent,
                  Rate linkBw = pcie::gen::gen3x16);

    const std::string &name() const { return name_; }
    pcie::NodeId node() const { return node_; }

    /** Compute time of one batch (no sync). */
    Time computeTime(const workload::ModelInfo &m,
                     std::size_t batch_size) const
    {
        return workload::computeLatency(m, batch_size);
    }

  private:
    std::string name_;
    pcie::NodeId node_;
};

} // namespace tb

#endif // TRAINBOX_DEVICES_NN_ACCELERATOR_HH
