#include "devices/nn_accelerator.hh"

namespace tb {

NnAccelerator::NnAccelerator(pcie::Topology &topo, const std::string &name,
                             pcie::NodeId parent, Rate link_bw)
    : name_(name), node_(topo.addDevice(name, parent, link_bw))
{
}

} // namespace tb
