#include "devices/prep_accelerator.hh"

namespace tb {

PrepAccelerator::PrepAccelerator(FluidNetwork &net, pcie::Topology &topo,
                                 const std::string &name,
                                 pcie::NodeId parent, PrepEngineKind kind,
                                 Rate engine_rate, bool with_ethernet,
                                 Rate link_bw)
    : name_(name),
      node_(topo.addDevice(name, parent, link_bw)),
      kind_(kind),
      engine_(net.addResource(name + ".engine", engine_rate))
{
    if (with_ethernet)
        ethPort_ = net.addResource(name + ".eth", defaultEthernetBw);
}

} // namespace tb
