#include "devices/prep_accelerator.hh"

namespace tb {

PrepAccelerator::PrepAccelerator(FluidNetwork &net, pcie::Topology &topo,
                                 const std::string &name,
                                 pcie::NodeId parent, PrepEngineKind kind,
                                 Rate engine_rate, bool with_ethernet,
                                 Rate link_bw)
    : net_(net),
      name_(name),
      node_(topo.addDevice(name, parent, link_bw)),
      kind_(kind),
      engine_(net.addResource(name + ".engine", engine_rate)),
      nominalEngineRate_(engine_rate)
{
    if (with_ethernet)
        ethPort_ = net.addResource(name + ".eth", defaultEthernetBw);
}

void
PrepAccelerator::setFailed(bool failed)
{
    if (failed == failed_)
        return;
    failed_ = failed;
    engine_->setCapacity(nominalEngineRate_ *
                         (failed ? kFailedCapacityScale : 1.0));
    net_.capacityChanged(engine_);
}

} // namespace tb
