/**
 * @file
 * NVMe SSD model.
 *
 * An SSD is a PCIe leaf whose internal read path is a bandwidth resource
 * (flash channels + controller). Reads place demand on the internal
 * resource and on the PCIe route toward the destination; the builder
 * composes the two.
 *
 * Writes (checkpoint drains) use a separate, slower internal write path
 * — NAND program operations — but are not free for concurrent readers:
 * program/erase cycles steal controller and channel time, so each
 * written byte also consumes a fraction of the read path
 * (kWriteReadInterference). This is what makes checkpoint traffic
 * contend with data-preparation reads on the very SSDs that feed them.
 */

#ifndef TRAINBOX_DEVICES_SSD_HH
#define TRAINBOX_DEVICES_SSD_HH

#include <string>

#include "pcie/topology.hh"

namespace tb {

/** One NVMe SSD attached to the PCIe tree. */
class NvmeSsd
{
  public:
    /** Typical datacenter NVMe sequential-read bandwidth. */
    static constexpr Rate defaultReadBandwidth = 3.2e9;

    /** Sequential-write (NAND program) bandwidth; well below reads. */
    static constexpr Rate defaultWriteBandwidth = 1.8e9;

    /** Read-path capacity consumed per written byte (mixed workload). */
    static constexpr double kWriteReadInterference = 0.35;

    /**
     * Write amplification of streaming shard appends. Checkpoint
     * drains are large sequential writes; ingest shard appends are
     * smaller and continuous, so the FTL rewrites partially-filled
     * blocks and each logical byte costs more NAND program time.
     */
    static constexpr double kShardWriteAmplification = 1.15;

    /**
     * Create the device: attaches a PCIe leaf under @p parent and
     * internal read/write bandwidth resources in @p net.
     */
    NvmeSsd(FluidNetwork &net, pcie::Topology &topo,
            const std::string &name, pcie::NodeId parent,
            Rate linkBw = pcie::gen::gen3x16 / 4.0,
            Rate readBw = defaultReadBandwidth,
            Rate writeBw = defaultWriteBandwidth);

    const std::string &name() const { return name_; }
    pcie::NodeId node() const { return node_; }

    /** Internal read-path resource. */
    FluidResource *readBandwidth() const { return readBw_; }

    /** Internal write-path (NAND program) resource. */
    FluidResource *writeBandwidth() const { return writeBw_; }

    /** Demand on the internal read path per flow base unit. */
    FlowDemand readDemand(double bytesPerUnit) const
    {
        return {readBw_, bytesPerUnit};
    }

    /** Demand on the internal write path per flow base unit. */
    FlowDemand writeDemand(double bytesPerUnit) const
    {
        return {writeBw_, bytesPerUnit};
    }

    /**
     * Read-path capacity a write flow steals per base unit — writes
     * and reads share controller/channel time, so checkpoint drains
     * slow concurrent prep reads even with a dedicated write resource.
     */
    FlowDemand writeReadInterference(double bytesPerUnit) const
    {
        return {readBw_, bytesPerUnit * kWriteReadInterference};
    }

    /**
     * Demand on the write path per shard-appended byte: the write
     * amplification of streaming appends on top of the NAND program
     * cost (ingest shard writes, docs/ROBUSTNESS.md).
     */
    FlowDemand shardWriteDemand(double bytesPerUnit) const
    {
        return writeDemand(bytesPerUnit * kShardWriteAmplification);
    }

    /** Read-path interference per shard-appended byte. */
    FlowDemand shardWriteReadInterference(double bytesPerUnit) const
    {
        return writeReadInterference(bytesPerUnit *
                                     kShardWriteAmplification);
    }

    /**
     * Scale the read path to @p scale x nominal bandwidth (fault
     * injection: latency-spike windows). 1.0 restores full health;
     * in-flight flows re-converge immediately. Values outside [0, 1]
     * are clamped with a logged warning.
     */
    void setReadBandwidthScale(double scale);

    /** Current read-path scale (1.0 = healthy). */
    double readBandwidthScale() const { return readScale_; }

  private:
    FluidNetwork &net_;
    std::string name_;
    pcie::NodeId node_;
    FluidResource *readBw_;
    FluidResource *writeBw_;
    Rate nominalReadBw_;
    double readScale_ = 1.0;
};

} // namespace tb

#endif // TRAINBOX_DEVICES_SSD_HH
