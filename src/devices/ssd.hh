/**
 * @file
 * NVMe SSD model.
 *
 * An SSD is a PCIe leaf whose internal read path is a bandwidth resource
 * (flash channels + controller). Reads place demand on the internal
 * resource and on the PCIe route toward the destination; the builder
 * composes the two.
 */

#ifndef TRAINBOX_DEVICES_SSD_HH
#define TRAINBOX_DEVICES_SSD_HH

#include <string>

#include "pcie/topology.hh"

namespace tb {

/** One NVMe SSD attached to the PCIe tree. */
class NvmeSsd
{
  public:
    /** Typical datacenter NVMe sequential-read bandwidth. */
    static constexpr Rate defaultReadBandwidth = 3.2e9;

    /**
     * Create the device: attaches a PCIe leaf under @p parent and an
     * internal read-bandwidth resource in @p net.
     */
    NvmeSsd(FluidNetwork &net, pcie::Topology &topo,
            const std::string &name, pcie::NodeId parent,
            Rate linkBw = pcie::gen::gen3x16 / 4.0,
            Rate readBw = defaultReadBandwidth);

    const std::string &name() const { return name_; }
    pcie::NodeId node() const { return node_; }

    /** Internal read-path resource. */
    FluidResource *readBandwidth() const { return readBw_; }

    /** Demand on the internal read path per flow base unit. */
    FlowDemand readDemand(double bytesPerUnit) const
    {
        return {readBw_, bytesPerUnit};
    }

    /**
     * Scale the read path to @p scale x nominal bandwidth (fault
     * injection: latency-spike windows). 1.0 restores full health;
     * in-flight flows re-converge immediately.
     */
    void setReadBandwidthScale(double scale);

    /** Current read-path scale (1.0 = healthy). */
    double readBandwidthScale() const { return readScale_; }

  private:
    FluidNetwork &net_;
    std::string name_;
    pcie::NodeId node_;
    FluidResource *readBw_;
    Rate nominalReadBw_;
    double readScale_ = 1.0;
};

} // namespace tb

#endif // TRAINBOX_DEVICES_SSD_HH
