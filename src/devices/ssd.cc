#include "devices/ssd.hh"

#include <algorithm>

#include "common/logging.hh"

namespace tb {

NvmeSsd::NvmeSsd(FluidNetwork &net, pcie::Topology &topo,
                 const std::string &name, pcie::NodeId parent,
                 Rate link_bw, Rate read_bw, Rate write_bw)
    : net_(net),
      name_(name),
      node_(topo.addDevice(name, parent, link_bw)),
      readBw_(net.addResource(name + ".flash", read_bw)),
      writeBw_(net.addResource(name + ".write", write_bw)),
      nominalReadBw_(read_bw)
{
}

void
NvmeSsd::setReadBandwidthScale(double scale)
{
    if (scale < 0.0 || scale > 1.0) {
        warn("ssd %s: read-bandwidth scale %g outside [0, 1]; clamping",
             name_.c_str(), scale);
        scale = std::clamp(scale, 0.0, 1.0);
    }
    if (scale == readScale_)
        return;
    readScale_ = scale;
    // Floor the effective capacity so the fluid allocator never sees a
    // zero-capacity resource (flows would take infinite time).
    readBw_->setCapacity(nominalReadBw_ * std::max(scale, 1e-9));
    net_.capacityChanged(readBw_);
}

} // namespace tb
