#include "devices/ssd.hh"

namespace tb {

NvmeSsd::NvmeSsd(FluidNetwork &net, pcie::Topology &topo,
                 const std::string &name, pcie::NodeId parent,
                 Rate link_bw, Rate read_bw)
    : name_(name),
      node_(topo.addDevice(name, parent, link_bw)),
      readBw_(net.addResource(name + ".flash", read_bw))
{
}

} // namespace tb
