#include "devices/ssd.hh"

#include "common/logging.hh"

namespace tb {

NvmeSsd::NvmeSsd(FluidNetwork &net, pcie::Topology &topo,
                 const std::string &name, pcie::NodeId parent,
                 Rate link_bw, Rate read_bw)
    : net_(net),
      name_(name),
      node_(topo.addDevice(name, parent, link_bw)),
      readBw_(net.addResource(name + ".flash", read_bw)),
      nominalReadBw_(read_bw)
{
}

void
NvmeSsd::setReadBandwidthScale(double scale)
{
    panic_if(scale <= 0.0, "read-bandwidth scale must be positive");
    if (scale == readScale_)
        return;
    readScale_ = scale;
    readBw_->setCapacity(nominalReadBw_ * scale);
    net_.capacityChanged();
}

} // namespace tb
