#include "devices/ethernet.hh"

#include <algorithm>

#include "common/logging.hh"

namespace tb {

PrepPool::PrepPool(FluidNetwork &net, const std::string &name,
                   Rate fabric_bw)
    : net_(net), name_(name),
      fabric_(net.addResource(name + ".fabric", fabric_bw)),
      nominalFabricBw_(fabric_bw)
{
}

void
PrepPool::setFabricBandwidthScale(double scale)
{
    if (scale < 0.0 || scale > 1.0) {
        warn("pool %s: fabric scale %g outside [0, 1]; clamping",
             name_.c_str(), scale);
        scale = std::clamp(scale, 0.0, 1.0);
    }
    if (scale == fabricScale_)
        return;
    fabricScale_ = scale;
    // Keep a tiny floor so in-flight flows stay finite-time.
    fabric_->setCapacity(nominalFabricBw_ * std::max(scale, 1e-9));
    net_.capacityChanged(fabric_);
}

PoolFpga &
PrepPool::addFpga(Rate engine_rate, Rate port_bw)
{
    const std::string id = name_ + ".fpga" + std::to_string(fpgas_.size());
    PoolFpga fpga;
    fpga.name = id;
    fpga.port = net_.addResource(id + ".eth", port_bw);
    fpga.engine = net_.addResource(id + ".engine", engine_rate);
    fpgas_.push_back(fpga);
    return fpgas_.back();
}

Rate
PrepPool::totalEngineRate() const
{
    Rate total = 0.0;
    for (const auto &f : fpgas_)
        total += f.engine->capacity();
    return total;
}

} // namespace tb
