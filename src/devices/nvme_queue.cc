#include "devices/nvme_queue.hh"

#include "common/logging.hh"

namespace tb {
namespace nvme {

QueuePair::QueuePair(std::size_t depth)
    : depth_(depth), sq_(depth), cq_(depth)
{
    fatal_if(depth < 2, "queue depth must be at least 2");
}

bool
QueuePair::sqFull() const
{
    return sqTail_ - sqHead_ >= depth_ - 1;
}

bool
QueuePair::submit(const Command &cmd)
{
    if (sqFull())
        return false;
    sq_[sqTail_ % depth_] = cmd;
    ++sqTail_; // doorbell
    return true;
}

bool
QueuePair::fetch(Command *out)
{
    panic_if(out == nullptr, "null command out-param");
    if (sqHead_ == sqTail_)
        return false;
    *out = sq_[sqHead_ % depth_];
    ++sqHead_;
    return true;
}

bool
QueuePair::postCompletion(std::uint16_t cid, std::uint16_t status)
{
    if (cqTail_ - cqHead_ >= depth_ - 1)
        return false;
    Completion c;
    c.cid = cid;
    c.status = status;
    // Phase flips every time the tail wraps the ring: entries written
    // in even laps carry phase=1 so the driver can spot fresh entries
    // without a doorbell from the device.
    c.phase = ((cqTail_ / depth_) % 2) == 0;
    cq_[cqTail_ % depth_] = c;
    ++cqTail_;
    return true;
}

bool
QueuePair::poll(Completion *out)
{
    panic_if(out == nullptr, "null completion out-param");
    if (cqHead_ == cqTail_)
        return false;
    *out = cq_[cqHead_ % depth_];
    ++cqHead_;
    return true;
}

std::size_t
QueuePair::submissionsPending() const
{
    return sqTail_ - sqHead_;
}

std::size_t
QueuePair::completionsPending() const
{
    return cqTail_ - cqHead_;
}

SsdCommandExecutor::SsdCommandExecutor(QueuePair &qp,
                                       std::vector<std::uint8_t> media)
    : qp_(qp), media_(std::move(media))
{
    fatal_if(media_.size() % kBlockBytes != 0,
             "media size must be a multiple of the block size");
}

std::size_t
SsdCommandExecutor::processAll(const DmaWrite &dma)
{
    std::size_t executed = 0;
    Command cmd;
    while (qp_.fetch(&cmd)) {
        const std::uint64_t blocks = std::uint64_t{cmd.nlb} + 1;
        if (cmd.slba + blocks > capacityBlocks()) {
            qp_.postCompletion(cmd.cid, kStatusLbaOutOfRange);
            ++executed;
            continue;
        }
        if (cmd.opcode == Opcode::Read) {
            const std::size_t offset =
                static_cast<std::size_t>(cmd.slba) * kBlockBytes;
            const std::size_t bytes =
                static_cast<std::size_t>(blocks) * kBlockBytes;
            std::vector<std::uint8_t> data(
                media_.begin() + offset, media_.begin() + offset + bytes);
            dma(cmd.prp, data);
        }
        // Writes would DMA-read from cmd.prp; the prep datapath only
        // reads, so a write is acknowledged without data movement.
        qp_.postCompletion(cmd.cid, kStatusSuccess);
        ++executed;
    }
    return executed;
}

} // namespace nvme
} // namespace tb
