/**
 * @file
 * Data-preparation accelerator (§IV-B, §V-B/C).
 *
 * A prep accelerator is a PCIe leaf with:
 *   - an internal *engine* resource whose capacity is the chain throughput
 *     of its formatting+augmentation pipeline (samples/s) — the FPGA's
 *     computation-acceleration module, or a GPU running DALI-style prep;
 *   - on-board DRAM used as the double buffer (modeled as unbounded; the
 *     paper's design sizes it for two batches);
 *   - optionally an Ethernet port toward the prep-pool (FPGA only).
 */

#ifndef TRAINBOX_DEVICES_PREP_ACCELERATOR_HH
#define TRAINBOX_DEVICES_PREP_ACCELERATOR_HH

#include <string>

#include "pcie/topology.hh"
#include "workload/cost_model.hh"

namespace tb {

/** Implementation substrate of a prep accelerator. */
enum class PrepEngineKind { Fpga, Gpu };

/** One data-preparation accelerator attached to the PCIe tree. */
class PrepAccelerator
{
  public:
    /** 100 Gbps Ethernet per FPGA port (§IV-D). */
    static constexpr Rate defaultEthernetBw = 12.5e9;

    /**
     * @param engineRate chain throughput in samples/s for the active
     *                   input type (workload::PrepDemand::fpgaChainRate
     *                   or gpuChainRate)
     * @param withEthernet create a prep-pool port (FPGAs only)
     */
    PrepAccelerator(FluidNetwork &net, pcie::Topology &topo,
                    const std::string &name, pcie::NodeId parent,
                    PrepEngineKind kind, Rate engineRate,
                    bool withEthernet,
                    Rate linkBw = pcie::gen::gen3x16);

    const std::string &name() const { return name_; }
    pcie::NodeId node() const { return node_; }
    PrepEngineKind kind() const { return kind_; }

    /** The formatting+augmentation pipeline resource (samples/s). */
    FluidResource *engine() const { return engine_; }

    /** Ethernet port toward the prep-pool (nullptr when absent). */
    FluidResource *ethernetPort() const { return ethPort_; }

    /** Demand on the engine per sample. */
    FlowDemand engineDemand() const { return {engine_, 1.0}; }

    /**
     * Crash / repair the accelerator (fault injection). A failed engine
     * keeps a vestigial capacity (kFailedCapacityScale x nominal) so
     * stranded flows striped across it crawl instead of dividing by
     * zero — recovery policies are expected to cancel and re-dispatch
     * them (see docs/ROBUSTNESS.md).
     */
    void setFailed(bool failed);

    bool failed() const { return failed_; }

    /** Residual engine capacity of a crashed accelerator. */
    static constexpr double kFailedCapacityScale = 1e-9;

  private:
    FluidNetwork &net_;
    std::string name_;
    pcie::NodeId node_;
    PrepEngineKind kind_;
    FluidResource *engine_;
    FluidResource *ethPort_ = nullptr;
    Rate nominalEngineRate_;
    bool failed_ = false;
};

} // namespace tb

#endif // TRAINBOX_DEVICES_PREP_ACCELERATOR_HH
