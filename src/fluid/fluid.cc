#include "fluid/fluid.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <mutex>

#include "common/logging.hh"
#include "sim/metrics.hh"

namespace tb {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
} // namespace

FluidResource::FluidResource(std::string name, Rate capacity)
    : name_(std::move(name)), capacity_(capacity)
{
    panic_if(capacity <= 0.0, "resource %s with non-positive capacity %g",
             name_.c_str(), capacity);
}

void
FluidResource::setCapacity(Rate capacity)
{
    // Zero is a legal *runtime* capacity (an elastic member that left,
    // a device that is fully down): the solver parks flows demanding a
    // zero-capacity resource at rate 0 until capacity returns. Only
    // negative or non-finite capacities are programming errors.
    panic_if(capacity < 0.0 || !std::isfinite(capacity),
             "resource %s capacity %g must be finite and >= 0",
             name_.c_str(), capacity);
    capacity_ = capacity;
}

double
FluidResource::served(const std::string &category) const
{
    auto it = served_.find(category);
    return it == served_.end() ? 0.0 : it->second;
}

double
FluidResource::utilization(Time now) const
{
    const double window = now - windowStart_;
    if (window <= 0.0 || capacity_ <= 0.0)
        return 0.0;
    return totalServed_ / (capacity_ * window);
}

void
FluidResource::resetAccounting(Time now)
{
    totalServed_ = 0.0;
    served_.clear();
    windowStart_ = now;
}

void
DemandSet::add(FluidResource *resource, double weight)
{
    panic_if(resource == nullptr, "DemandSet::add null resource");
    if (weight <= 0.0)
        return;
    weights_[resource] += weight;
}

void
DemandSet::add(const std::vector<FlowDemand> &demands, double scale)
{
    for (const auto &d : demands)
        add(d.resource, d.weight * scale);
}

std::vector<FlowDemand>
DemandSet::build() const
{
    std::vector<FlowDemand> out;
    out.reserve(weights_.size());
    for (const auto &[res, w] : weights_)
        out.push_back({res, w});
    return out;
}

FluidNetwork::FluidNetwork(EventQueue &eq) : eq_(eq)
{
#ifdef TB_PARALLEL_SOLVER
    if (const char *env = std::getenv("TB_PARALLEL_SOLVER")) {
        const int workers = std::atoi(env);
        if (workers > 1)
            setParallelWorkers(static_cast<unsigned>(workers));
    }
#endif
}

FluidNetwork::~FluidNetwork()
{
    eq_.cancel(pending_);
}

FluidResource *
FluidNetwork::addResource(const std::string &name, Rate capacity)
{
    resources_.push_back(
        std::make_unique<FluidResource>(namePrefix_ + name, capacity));
    FluidResource *r = resources_.back().get();
    r->index_ = resources_.size() - 1;
    if (metrics_)
        instrumentResource(r);
    return r;
}

void
FluidNetwork::instrumentResource(FluidResource *r)
{
    r->utilHist_ = metrics_->histogram(
        "util." + r->name(), "time-weighted utilization of " + r->name());
}

void
FluidNetwork::attachMetrics(MetricsRegistry *metrics)
{
    if (metrics == nullptr || !metrics->enabled())
        return;
    metrics_ = metrics;
    flowsStartedCtr_ = metrics_->counter("fluid.flows_started",
                                         "flows launched");
    flowsCompletedCtr_ = metrics_->counter("fluid.flows_completed",
                                           "flows run to completion");
    flowsCancelledCtr_ = metrics_->counter("fluid.flows_cancelled",
                                           "flows aborted");
    activeFlowsGauge_ = metrics_->gauge("fluid.active_flows",
                                        "in-flight flows");
    for (auto &r : resources_)
        instrumentResource(r.get());
}

void
FluidNetwork::flushMetrics()
{
    if (metrics_)
        advanceTo(eq_.now());
}

FluidResource *
FluidNetwork::findResource(const std::string &name) const
{
    for (const auto &r : resources_)
        if (r->name() == name)
            return r.get();
    return nullptr;
}

bool
FluidNetwork::setParallelWorkers(unsigned workers, std::size_t minFlows)
{
#ifdef TB_PARALLEL_SOLVER
    if (workers < 2) {
        pool_.reset();
        return true;
    }
    pool_ = std::make_unique<ParallelFor>(workers);
    parallelMinFlows_ = std::max<std::size_t>(1, minFlows);
    return true;
#else
    (void)workers;
    (void)minFlows;
    return false;
#endif
}

void
FluidNetwork::addMembership(FluidFlow &flow)
{
    flow.memberSlot.resize(flow.demands.size());
    for (std::size_t i = 0; i < flow.demands.size(); ++i) {
        FluidResource *r = flow.demands[i].resource;
        flow.memberSlot[i] = static_cast<std::uint32_t>(r->members_.size());
        r->members_.emplace_back(&flow, static_cast<std::uint32_t>(i));
    }
}

void
FluidNetwork::removeMembership(FluidFlow &flow)
{
    for (std::size_t i = 0; i < flow.demands.size(); ++i) {
        FluidResource *r = flow.demands[i].resource;
        auto &vec = r->members_;
        const std::uint32_t slot = flow.memberSlot[i];
        vec[slot] = vec.back();
        vec.pop_back();
        // Swap-remove moved another entry into this slot; fix its
        // back-reference (self-moves were just popped).
        if (slot < vec.size())
            vec[slot].first->memberSlot[vec[slot].second] = slot;
    }
}

FlowId
FluidNetwork::startFlow(FlowSpec spec)
{
    panic_if(spec.size < 0.0, "flow with negative size %g", spec.size);
    panic_if(spec.fairWeight <= 0.0, "flow with fair weight %g",
             spec.fairWeight);
    panic_if(spec.demands.empty() && spec.rateCap <= 0.0 && spec.size > 0.0,
             "flow '%s' has neither demands nor a rate cap",
             spec.category.c_str());
    for (const auto &d : spec.demands) {
        panic_if(d.resource == nullptr, "flow demand with null resource");
        panic_if(d.weight <= 0.0, "flow demand with weight %g on %s",
                 d.weight, d.resource->name().c_str());
    }

    advanceTo(eq_.now());

    const FlowId id = nextId_++;
    FluidFlow flow;
    flow.id = id;
    flow.category = std::move(spec.category);
    flow.remaining = spec.size;
    flow.rateCap = spec.rateCap;
    flow.fairWeight = spec.fairWeight;
    flow.demands = std::move(spec.demands);
    flow.onComplete = std::move(spec.onComplete);
    auto it = flows_.emplace(id, std::move(flow)).first;
    addMembership(it->second);
    markFlowDirty(it->second);
    flowArrayStale_ = true;

    if (flowsStartedCtr_) {
        flowsStartedCtr_->inc();
        activeFlowsGauge_->set(static_cast<double>(flows_.size()));
    }

    afterMutation();
    return id;
}

void
FluidNetwork::cancelFlow(FlowId id)
{
    advanceTo(eq_.now());
    auto it = flows_.find(id);
    if (it != flows_.end()) {
        removeMembership(it->second);
        for (const auto &d : it->second.demands)
            markDirty(d.resource);
        flows_.erase(it);
        flowArrayStale_ = true;
        if (flowsCancelledCtr_) {
            flowsCancelledCtr_->inc();
            activeFlowsGauge_->set(static_cast<double>(flows_.size()));
        }
    }
    afterMutation();
}

double
FluidNetwork::flowRate(FlowId id) const
{
    auto it = flows_.find(id);
    return it == flows_.end() ? 0.0 : it->second.rate;
}

double
FluidNetwork::flowRemaining(FlowId id) const
{
    auto it = flows_.find(id);
    if (it == flows_.end())
        return 0.0;
    // Account for progress since the last advance without mutating state.
    const double dt = eq_.now() - lastAdvance_;
    return std::max(0.0, it->second.remaining - it->second.rate * dt);
}

void
FluidNetwork::capacityChanged()
{
    advanceTo(eq_.now());
    for (auto &r : resources_)
        markDirty(r.get());
    afterMutation();
}

void
FluidNetwork::capacityChanged(FluidResource *resource)
{
    panic_if(resource == nullptr, "capacityChanged(null resource)");
    advanceTo(eq_.now());
    markDirty(resource);
    afterMutation();
}

void
FluidNetwork::resetAccounting()
{
    resetAccounting(0, resources_.size());
}

void
FluidNetwork::resetAccounting(std::size_t begin, std::size_t end)
{
    panic_if(begin > end || end > resources_.size(),
             "resetAccounting range [%zu, %zu) out of bounds (%zu resources)",
             begin, end, resources_.size());
    advanceTo(eq_.now());
    for (std::size_t i = begin; i < end; ++i) {
        auto &r = resources_[i];
        r->resetAccounting(eq_.now());
        if (r->utilHist_)
            r->utilHist_->reset();
    }
}

void
FluidNetwork::advanceTo(Time now)
{
    const double dt = now - lastAdvance_;
    panic_if(dt < -1e-12, "fluid network advancing backwards (%g)", dt);
    lastAdvance_ = now;
    if (dt <= 0.0)
        return;
    if (parallelActive()) {
        advanceParallel(dt);
        return;
    }
    for (auto &[id, flow] : flows_) {
        if (metrics_) {
            // The rates held for all of [lastAdvance_, now]: charge one
            // exact time-weighted utilization sample per resource.
            for (const auto &d : flow.demands)
                d.resource->loadScratch_ += d.weight * flow.rate;
        }
        const double served = std::min(flow.remaining, flow.rate * dt);
        if (served > 0.0) {
            flow.remaining -= served;
            for (const auto &d : flow.demands)
                d.resource->account(flow.category, d.weight * served);
            // A flow that drained to zero frees its share: its component
            // must re-solve, exactly as a full re-solve would freeze it.
            if (flow.remaining <= 0.0)
                markFlowDirty(flow);
        }
    }
    if (metrics_) {
        for (auto &r : resources_) {
            const double util =
                std::min(1.0, r->loadScratch_ / r->capacity());
            r->loadScratch_ = 0.0;
            if (r->utilHist_)
                r->utilHist_->record(util, dt);
        }
    }
}

void
FluidNetwork::advanceParallel(double dt)
{
    rebuildFlowArray();
    // Phase 1 (parallel): per-flow arithmetic only — each flow's served
    // amount and remaining size are independent of every other flow.
    pool_->run(flowArray_.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
            FluidFlow &flow = *flowArray_[i];
            const double served = std::min(flow.remaining, flow.rate * dt);
            flow.servedScratch = served;
            if (served > 0.0) {
                flow.remaining -= served;
                flow.drainedScratch = flow.remaining <= 0.0;
            } else {
                flow.drainedScratch = false;
            }
        }
    });
    // Phase 2 (serial, flow-id order): shared-state accumulation. The
    // additions land in exactly the order the serial path uses, so the
    // accounting sums are bit-identical.
    for (FluidFlow *fp : flowArray_) {
        FluidFlow &flow = *fp;
        if (metrics_) {
            for (const auto &d : flow.demands)
                d.resource->loadScratch_ += d.weight * flow.rate;
        }
        if (flow.servedScratch > 0.0) {
            for (const auto &d : flow.demands)
                d.resource->account(flow.category,
                                    d.weight * flow.servedScratch);
            if (flow.drainedScratch)
                markFlowDirty(flow);
        }
    }
    if (metrics_) {
        for (auto &r : resources_) {
            const double util =
                std::min(1.0, r->loadScratch_ / r->capacity());
            r->loadScratch_ = 0.0;
            if (r->utilHist_)
                r->utilHist_->record(util, dt);
        }
    }
}

void
FluidNetwork::rebuildFlowArray()
{
    if (!flowArrayStale_)
        return;
    flowArray_.clear();
    flowArray_.reserve(flows_.size());
    for (auto &[id, flow] : flows_)
        flowArray_.push_back(&flow);
    flowArrayStale_ = false;
}

void
FluidNetwork::afterMutation()
{
    if (batchDepth_ > 0)
        return;
    solveDirty();
    scheduleCompletion();
}

void
FluidNetwork::endBatch()
{
    panic_if(batchDepth_ == 0, "endBatch without beginBatch");
    if (--batchDepth_ == 0) {
        solveDirty();
        scheduleCompletion();
    }
}

void
FluidNetwork::solveDirty()
{
    if (mode_ == SolverMode::GlobalResolve) {
        for (FluidResource *r : dirtyResources_)
            r->dirty_ = false;
        dirtyResources_.clear();
        dirtyFlowIds_.clear();
        if (flows_.empty())
            return;
        ++stats_.solves;
        ++stats_.fullSolves;
        ++stats_.componentsSolved;
        stats_.flowsSolved += flows_.size();
        solveGlobal();
        return;
    }

    affected_.clear();
    resQueue_.clear();
    const std::uint64_t mark = ++mark_;

    if (mode_ == SolverMode::FullResolve) {
        ++stats_.fullSolves;
        for (FluidResource *r : dirtyResources_)
            r->dirty_ = false;
        dirtyResources_.clear();
        dirtyFlowIds_.clear();
        for (auto &[id, flow] : flows_) {
            flow.mark = mark;
            affected_.push_back(&flow);
        }
        if (affected_.empty())
            return;
    } else {
        // Gather: BFS over the sharing graph from the dirty seeds. Every
        // flow sharing a resource with a dirty flow can see its max-min
        // share shift, transitively — the closure is exactly the union
        // of the connected components that contain a dirty seed.
        for (FluidResource *r : dirtyResources_) {
            r->dirty_ = false;
            if (r->mark_ != mark) {
                r->mark_ = mark;
                resQueue_.push_back(r);
            }
        }
        dirtyResources_.clear();
        for (FlowId id : dirtyFlowIds_) {
            auto it = flows_.find(id);
            if (it == flows_.end() || it->second.mark == mark)
                continue;
            FluidFlow &flow = it->second;
            flow.mark = mark;
            affected_.push_back(&flow);
            for (const auto &d : flow.demands) {
                if (d.resource->mark_ != mark) {
                    d.resource->mark_ = mark;
                    resQueue_.push_back(d.resource);
                }
            }
        }
        dirtyFlowIds_.clear();
        for (std::size_t head = 0; head < resQueue_.size(); ++head) {
            FluidResource *r = resQueue_[head];
            for (const auto &[flow, di] : r->members_) {
                if (flow->mark == mark)
                    continue;
                flow->mark = mark;
                affected_.push_back(flow);
                for (const auto &d : flow->demands) {
                    if (d.resource->mark_ != mark) {
                        d.resource->mark_ = mark;
                        resQueue_.push_back(d.resource);
                    }
                }
            }
        }
        if (affected_.empty())
            return;
        std::sort(affected_.begin(), affected_.end(),
                  [](const FluidFlow *a, const FluidFlow *b) {
                      return a->id < b->id;
                  });
    }

    ++stats_.solves;

    // Partition the affected set into true connected components and run
    // progressive filling on each. Components are seeded in ascending
    // flow-id order, so the decomposition is deterministic.
    const std::uint64_t cmark = ++mark_;
    for (FluidFlow *seed : affected_) {
        if (seed->mark == cmark)
            continue;
        compFlows_.clear();
        compRes_.clear();
        seed->mark = cmark;
        compFlows_.push_back(seed);
        for (std::size_t head = 0; head < compFlows_.size(); ++head) {
            FluidFlow *flow = compFlows_[head];
            for (const auto &d : flow->demands) {
                FluidResource *r = d.resource;
                if (r->mark_ == cmark)
                    continue;
                r->mark_ = cmark;
                compRes_.push_back(r);
                for (const auto &[member, di] : r->members_) {
                    if (member->mark != cmark) {
                        member->mark = cmark;
                        compFlows_.push_back(member);
                    }
                }
            }
        }
        std::sort(compFlows_.begin(), compFlows_.end(),
                  [](const FluidFlow *a, const FluidFlow *b) {
                      return a->id < b->id;
                  });
        std::sort(compRes_.begin(), compRes_.end(),
                  [](const FluidResource *a, const FluidResource *b) {
                      return a->index_ < b->index_;
                  });
        solveComponent();
        ++stats_.componentsSolved;
        stats_.flowsSolved += compFlows_.size();
    }
}

void
FluidNetwork::solveComponent()
{
    // Progressive filling: raise all unfrozen flow rates uniformly until a
    // flow hits its cap or a resource saturates; repeat. Restricted to one
    // connected component, this performs the same iterations in the same
    // order (flows by id, resources by creation order) as a whole-network
    // solve would on this component — resources outside the component
    // never constrain it, and flows outside never contribute weight.
    for (FluidResource *r : compRes_) {
        r->allocScratch_ = r->capacity(); // remaining slack
        r->weightScratch_ = 0.0;          // active weight (recomputed below)
    }

    std::size_t unfrozen = 0;
    for (FluidFlow *flow : compFlows_) {
        flow->rate = 0.0;
        flow->frozen = flow->remaining <= 0.0;
        if (!flow->frozen)
            ++unfrozen;
    }

    while (unfrozen > 0) {
        for (FluidResource *r : compRes_)
            r->weightScratch_ = 0.0;
        for (FluidFlow *flow : compFlows_) {
            if (flow->frozen)
                continue;
            for (const auto &d : flow->demands)
                d.resource->weightScratch_ += d.weight * flow->fairWeight;
        }

        double step = kInf;
        for (FluidResource *r : compRes_) {
            if (r->weightScratch_ > 0.0)
                step = std::min(step,
                                std::max(0.0, r->allocScratch_) /
                                    r->weightScratch_);
        }
        for (FluidFlow *flow : compFlows_) {
            if (flow->frozen || flow->rateCap <= 0.0)
                continue;
            step = std::min(step, (flow->rateCap - flow->rate) /
                                      flow->fairWeight);
        }
        panic_if(std::isinf(step),
                 "unconstrained flow in fluid network (no demand, no cap)");

        for (FluidFlow *flow : compFlows_) {
            if (flow->frozen)
                continue;
            flow->rate += step * flow->fairWeight;
            for (const auto &d : flow->demands)
                d.resource->allocScratch_ -=
                    d.weight * flow->fairWeight * step;
        }

        // Freeze flows that hit their caps.
        for (FluidFlow *flow : compFlows_) {
            if (flow->frozen)
                continue;
            if (flow->rateCap > 0.0 &&
                flow->rate >= flow->rateCap * (1.0 - 1e-12)) {
                flow->frozen = true;
                --unfrozen;
            }
        }
        // Freeze flows on saturated resources.
        for (FluidResource *r : compRes_) {
            if (r->weightScratch_ <= 0.0)
                continue;
            if (r->allocScratch_ <= 1e-12 * r->capacity()) {
                for (FluidFlow *flow : compFlows_) {
                    if (flow->frozen)
                        continue;
                    for (const auto &d : flow->demands) {
                        if (d.resource == r) {
                            flow->frozen = true;
                            --unfrozen;
                            break;
                        }
                    }
                }
            }
        }
    }
}

void
FluidNetwork::solveGlobal()
{
    // The seed's coupled loop, kept verbatim: the uniform step is the
    // minimum across the entire network, so disjoint components advance
    // in lockstep and a 10k-flow fleet pays O(components) rounds of
    // O(network) work per solve. bench/sim_perf's baseline.
    for (auto &r : resources_) {
        r->allocScratch_ = r->capacity();
        r->weightScratch_ = 0.0;
    }

    std::size_t unfrozen = 0;
    for (auto &[id, flow] : flows_) {
        flow.rate = 0.0;
        flow.frozen = flow.remaining <= 0.0;
        if (!flow.frozen)
            ++unfrozen;
    }

    while (unfrozen > 0) {
        for (auto &r : resources_)
            r->weightScratch_ = 0.0;
        for (auto &[id, flow] : flows_) {
            if (flow.frozen)
                continue;
            for (const auto &d : flow.demands)
                d.resource->weightScratch_ += d.weight * flow.fairWeight;
        }

        double step = kInf;
        for (auto &r : resources_) {
            if (r->weightScratch_ > 0.0)
                step = std::min(step,
                                std::max(0.0, r->allocScratch_) /
                                    r->weightScratch_);
        }
        for (auto &[id, flow] : flows_) {
            if (flow.frozen || flow.rateCap <= 0.0)
                continue;
            step = std::min(step, (flow.rateCap - flow.rate) /
                                      flow.fairWeight);
        }
        panic_if(std::isinf(step),
                 "unconstrained flow in fluid network (no demand, no cap)");

        for (auto &[id, flow] : flows_) {
            if (flow.frozen)
                continue;
            flow.rate += step * flow.fairWeight;
            for (const auto &d : flow.demands)
                d.resource->allocScratch_ -=
                    d.weight * flow.fairWeight * step;
        }

        for (auto &[id, flow] : flows_) {
            if (flow.frozen)
                continue;
            if (flow.rateCap > 0.0 &&
                flow.rate >= flow.rateCap * (1.0 - 1e-12)) {
                flow.frozen = true;
                --unfrozen;
            }
        }
        for (auto &r : resources_) {
            if (r->weightScratch_ <= 0.0)
                continue;
            if (r->allocScratch_ <= 1e-12 * r->capacity()) {
                for (auto &[id, flow] : flows_) {
                    if (flow.frozen)
                        continue;
                    for (const auto &d : flow.demands) {
                        if (d.resource == r.get()) {
                            flow.frozen = true;
                            --unfrozen;
                            break;
                        }
                    }
                }
            }
        }
    }
}

void
FluidNetwork::scheduleCompletion()
{
    eq_.cancel(pending_);
    double earliest = kInf;
    if (parallelActive()) {
        rebuildFlowArray();
        // Per-thread minimum, merged under a mutex: min() is exact (no
        // rounding), so the merge order cannot change the result.
        std::mutex mu;
        pool_->run(flowArray_.size(),
                   [&](std::size_t begin, std::size_t end) {
                       double local = kInf;
                       for (std::size_t i = begin; i < end; ++i) {
                           const FluidFlow &flow = *flowArray_[i];
                           if (flow.remaining <= 0.0) {
                               local = 0.0;
                               break;
                           }
                           if (flow.rate > 0.0)
                               local = std::min(local,
                                                flow.remaining / flow.rate);
                       }
                       std::lock_guard lock(mu);
                       earliest = std::min(earliest, local);
                   });
    } else {
        for (const auto &[id, flow] : flows_) {
            if (flow.remaining <= 0.0) {
                earliest = 0.0;
                break;
            }
            if (flow.rate > 0.0)
                earliest = std::min(earliest, flow.remaining / flow.rate);
        }
    }
    if (std::isinf(earliest))
        return;
    pending_ = eq_.scheduleIn(earliest, [this] { completeEarliest(); });
}

void
FluidNetwork::completeEarliest()
{
    pending_.invalidate();
    advanceTo(eq_.now());

    // Collect every flow that has (numerically) finished.
    std::vector<FluidFlow> done;
    for (auto it = flows_.begin(); it != flows_.end();) {
        FluidFlow &flow = it->second;
        const double eps =
            1e-9 * std::max(1.0, flow.remaining + flow.rate);
        if (flow.remaining <= eps) {
            removeMembership(flow);
            for (const auto &d : flow.demands)
                markDirty(d.resource);
            done.push_back(std::move(flow));
            it = flows_.erase(it);
            flowArrayStale_ = true;
        } else {
            ++it;
        }
    }

    if (flowsCompletedCtr_ && !done.empty()) {
        flowsCompletedCtr_->add(static_cast<double>(done.size()));
        activeFlowsGauge_->set(static_cast<double>(flows_.size()));
    }

    solveDirty();
    scheduleCompletion();

    const Time now = eq_.now();
    for (auto &flow : done)
        if (flow.onComplete)
            flow.onComplete(now);
}

} // namespace tb
