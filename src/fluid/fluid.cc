#include "fluid/fluid.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"
#include "sim/metrics.hh"

namespace tb {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
} // namespace

FluidResource::FluidResource(std::string name, Rate capacity)
    : name_(std::move(name)), capacity_(capacity)
{
    panic_if(capacity <= 0.0, "resource %s with non-positive capacity %g",
             name_.c_str(), capacity);
}

void
FluidResource::setCapacity(Rate capacity)
{
    panic_if(capacity <= 0.0, "resource %s capacity %g must be positive",
             name_.c_str(), capacity);
    capacity_ = capacity;
}

double
FluidResource::served(const std::string &category) const
{
    auto it = served_.find(category);
    return it == served_.end() ? 0.0 : it->second;
}

double
FluidResource::utilization(Time now) const
{
    const double window = now - windowStart_;
    if (window <= 0.0)
        return 0.0;
    return totalServed_ / (capacity_ * window);
}

void
FluidResource::resetAccounting(Time now)
{
    totalServed_ = 0.0;
    served_.clear();
    windowStart_ = now;
}

void
DemandSet::add(FluidResource *resource, double weight)
{
    panic_if(resource == nullptr, "DemandSet::add null resource");
    if (weight <= 0.0)
        return;
    weights_[resource] += weight;
}

void
DemandSet::add(const std::vector<FlowDemand> &demands, double scale)
{
    for (const auto &d : demands)
        add(d.resource, d.weight * scale);
}

std::vector<FlowDemand>
DemandSet::build() const
{
    std::vector<FlowDemand> out;
    out.reserve(weights_.size());
    for (const auto &[res, w] : weights_)
        out.push_back({res, w});
    return out;
}

FluidNetwork::FluidNetwork(EventQueue &eq) : eq_(eq) {}

FluidNetwork::~FluidNetwork()
{
    eq_.cancel(pending_);
}

FluidResource *
FluidNetwork::addResource(const std::string &name, Rate capacity)
{
    resources_.push_back(std::make_unique<FluidResource>(name, capacity));
    FluidResource *r = resources_.back().get();
    if (metrics_)
        instrumentResource(r);
    return r;
}

void
FluidNetwork::instrumentResource(FluidResource *r)
{
    r->utilHist_ = metrics_->histogram(
        "util." + r->name(), "time-weighted utilization of " + r->name());
}

void
FluidNetwork::attachMetrics(MetricsRegistry *metrics)
{
    if (metrics == nullptr || !metrics->enabled())
        return;
    metrics_ = metrics;
    flowsStartedCtr_ = metrics_->counter("fluid.flows_started",
                                         "flows launched");
    flowsCompletedCtr_ = metrics_->counter("fluid.flows_completed",
                                           "flows run to completion");
    flowsCancelledCtr_ = metrics_->counter("fluid.flows_cancelled",
                                           "flows aborted");
    activeFlowsGauge_ = metrics_->gauge("fluid.active_flows",
                                        "in-flight flows");
    for (auto &r : resources_)
        instrumentResource(r.get());
}

void
FluidNetwork::flushMetrics()
{
    if (metrics_)
        advanceTo(eq_.now());
}

FluidResource *
FluidNetwork::findResource(const std::string &name) const
{
    for (const auto &r : resources_)
        if (r->name() == name)
            return r.get();
    return nullptr;
}

FlowId
FluidNetwork::startFlow(FlowSpec spec)
{
    panic_if(spec.size < 0.0, "flow with negative size %g", spec.size);
    panic_if(spec.fairWeight <= 0.0, "flow with fair weight %g",
             spec.fairWeight);
    panic_if(spec.demands.empty() && spec.rateCap <= 0.0 && spec.size > 0.0,
             "flow '%s' has neither demands nor a rate cap",
             spec.category.c_str());
    for (const auto &d : spec.demands) {
        panic_if(d.resource == nullptr, "flow demand with null resource");
        panic_if(d.weight <= 0.0, "flow demand with weight %g on %s",
                 d.weight, d.resource->name().c_str());
    }

    advanceTo(eq_.now());

    const FlowId id = nextId_++;
    Flow flow;
    flow.id = id;
    flow.category = std::move(spec.category);
    flow.remaining = spec.size;
    flow.rateCap = spec.rateCap;
    flow.fairWeight = spec.fairWeight;
    flow.demands = std::move(spec.demands);
    flow.onComplete = std::move(spec.onComplete);
    flows_.emplace(id, std::move(flow));

    if (flowsStartedCtr_) {
        flowsStartedCtr_->inc();
        activeFlowsGauge_->set(static_cast<double>(flows_.size()));
    }

    recomputeRates();
    scheduleCompletion();
    return id;
}

void
FluidNetwork::cancelFlow(FlowId id)
{
    advanceTo(eq_.now());
    if (flowsCancelledCtr_ && flows_.erase(id) > 0) {
        flowsCancelledCtr_->inc();
        activeFlowsGauge_->set(static_cast<double>(flows_.size()));
    } else {
        flows_.erase(id);
    }
    recomputeRates();
    scheduleCompletion();
}

double
FluidNetwork::flowRate(FlowId id) const
{
    auto it = flows_.find(id);
    return it == flows_.end() ? 0.0 : it->second.rate;
}

double
FluidNetwork::flowRemaining(FlowId id) const
{
    auto it = flows_.find(id);
    if (it == flows_.end())
        return 0.0;
    // Account for progress since the last advance without mutating state.
    const double dt = eq_.now() - lastAdvance_;
    return std::max(0.0, it->second.remaining - it->second.rate * dt);
}

void
FluidNetwork::capacityChanged()
{
    advanceTo(eq_.now());
    recomputeRates();
    scheduleCompletion();
}

void
FluidNetwork::resetAccounting()
{
    advanceTo(eq_.now());
    for (auto &r : resources_) {
        r->resetAccounting(eq_.now());
        if (r->utilHist_)
            r->utilHist_->reset();
    }
}

void
FluidNetwork::advanceTo(Time now)
{
    const double dt = now - lastAdvance_;
    panic_if(dt < -1e-12, "fluid network advancing backwards (%g)", dt);
    lastAdvance_ = now;
    if (dt <= 0.0)
        return;
    for (auto &[id, flow] : flows_) {
        if (metrics_) {
            // The rates held for all of [lastAdvance_, now]: charge one
            // exact time-weighted utilization sample per resource.
            for (const auto &d : flow.demands)
                d.resource->loadScratch_ += d.weight * flow.rate;
        }
        const double served = std::min(flow.remaining, flow.rate * dt);
        if (served > 0.0) {
            flow.remaining -= served;
            for (const auto &d : flow.demands)
                d.resource->account(flow.category, d.weight * served);
        }
    }
    if (metrics_) {
        for (auto &r : resources_) {
            const double util =
                std::min(1.0, r->loadScratch_ / r->capacity());
            r->loadScratch_ = 0.0;
            if (r->utilHist_)
                r->utilHist_->record(util, dt);
        }
    }
}

void
FluidNetwork::recomputeRates()
{
    // Progressive filling: raise all unfrozen flow rates uniformly until a
    // flow hits its cap or a resource saturates; repeat.
    for (auto &r : resources_) {
        r->allocScratch_ = r->capacity(); // remaining slack
        r->weightScratch_ = 0.0;          // active weight (recomputed below)
    }

    std::size_t unfrozen = 0;
    for (auto &[id, flow] : flows_) {
        flow.rate = 0.0;
        flow.frozen = flow.remaining <= 0.0;
        if (!flow.frozen)
            ++unfrozen;
    }

    while (unfrozen > 0) {
        for (auto &r : resources_)
            r->weightScratch_ = 0.0;
        for (auto &[id, flow] : flows_) {
            if (flow.frozen)
                continue;
            for (const auto &d : flow.demands)
                d.resource->weightScratch_ += d.weight * flow.fairWeight;
        }

        double step = kInf;
        for (auto &r : resources_) {
            if (r->weightScratch_ > 0.0)
                step = std::min(step,
                                std::max(0.0, r->allocScratch_) /
                                    r->weightScratch_);
        }
        for (auto &[id, flow] : flows_) {
            if (flow.frozen || flow.rateCap <= 0.0)
                continue;
            step = std::min(step, (flow.rateCap - flow.rate) /
                                      flow.fairWeight);
        }
        panic_if(std::isinf(step),
                 "unconstrained flow in fluid network (no demand, no cap)");

        for (auto &[id, flow] : flows_) {
            if (flow.frozen)
                continue;
            flow.rate += step * flow.fairWeight;
            for (const auto &d : flow.demands)
                d.resource->allocScratch_ -=
                    d.weight * flow.fairWeight * step;
        }

        // Freeze flows that hit their caps.
        for (auto &[id, flow] : flows_) {
            if (flow.frozen)
                continue;
            if (flow.rateCap > 0.0 &&
                flow.rate >= flow.rateCap * (1.0 - 1e-12)) {
                flow.frozen = true;
                --unfrozen;
            }
        }
        // Freeze flows on saturated resources.
        for (auto &r : resources_) {
            if (r->weightScratch_ <= 0.0)
                continue;
            if (r->allocScratch_ <= 1e-12 * r->capacity()) {
                for (auto &[id, flow] : flows_) {
                    if (flow.frozen)
                        continue;
                    for (const auto &d : flow.demands) {
                        if (d.resource == r.get()) {
                            flow.frozen = true;
                            --unfrozen;
                            break;
                        }
                    }
                }
            }
        }
    }
}

void
FluidNetwork::scheduleCompletion()
{
    eq_.cancel(pending_);
    double earliest = kInf;
    for (const auto &[id, flow] : flows_) {
        if (flow.remaining <= 0.0) {
            earliest = 0.0;
            break;
        }
        if (flow.rate > 0.0)
            earliest = std::min(earliest, flow.remaining / flow.rate);
    }
    if (std::isinf(earliest))
        return;
    pending_ = eq_.scheduleIn(earliest, [this] { completeEarliest(); });
}

void
FluidNetwork::completeEarliest()
{
    pending_.invalidate();
    advanceTo(eq_.now());

    // Collect every flow that has (numerically) finished.
    std::vector<Flow> done;
    for (auto it = flows_.begin(); it != flows_.end();) {
        Flow &flow = it->second;
        const double eps =
            1e-9 * std::max(1.0, flow.remaining + flow.rate);
        if (flow.remaining <= eps) {
            done.push_back(std::move(flow));
            it = flows_.erase(it);
        } else {
            ++it;
        }
    }

    if (flowsCompletedCtr_ && !done.empty()) {
        flowsCompletedCtr_->add(static_cast<double>(done.size()));
        activeFlowsGauge_->set(static_cast<double>(flows_.size()));
    }

    recomputeRates();
    scheduleCompletion();

    const Time now = eq_.now();
    for (auto &flow : done)
        if (flow.onComplete)
            flow.onComplete(now);
}

} // namespace tb
