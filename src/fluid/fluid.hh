/**
 * @file
 * Fluid-flow contention engine.
 *
 * Every shared hardware resource in the simulated server — a PCIe link
 * direction, the root complex, host DRAM bandwidth, the CPU core pool, an
 * SSD's read path, an FPGA prep pipeline, an Ethernet link — is a
 * FluidResource with a capacity in units/second. Work moves through the
 * system as fluid flows: a flow has a size in *base units* (bytes for a DMA,
 * samples for a prep task) and a set of per-resource demand weights (units
 * of that resource consumed per base unit served). A DMA that crosses three
 * PCIe links and writes host memory is one flow with four demands.
 *
 * At any instant the engine assigns each active flow a base rate via
 * progressive filling (weighted max-min fairness with optional per-flow
 * rate caps — a prep task cannot exceed its parallelism, a device port
 * cannot exceed its line rate). Rates are piecewise constant between flow
 * arrivals/departures; the engine advances remaining sizes lazily and keeps
 * exactly one completion event pending in the EventQueue.
 *
 * The solver is *incremental*: progressive filling is run per connected
 * component of the flow/resource sharing graph, and a mutation (flow
 * start/cancel/completion, capacity change, a flow draining to zero) only
 * re-solves the components it touched. Clean components keep their cached
 * rates, which are exactly what a fresh solve would produce — max-min
 * allocations are independent across components (the dirty-set invariant;
 * see docs/PERFORMANCE.md). FullResolve mode re-solves every component on
 * every mutation and is the reference the equivalence tests pin against.
 *
 * The engine also performs per-category accounting on every resource
 * (bytes moved for "data_load" vs "formatting" vs ...), which is what the
 * host-resource figures of the paper (Figs 10/11/22) are built from.
 */

#ifndef TRAINBOX_FLUID_FLUID_HH
#define TRAINBOX_FLUID_FLUID_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel_for.hh"
#include "sim/event_queue.hh"

namespace tb {

class MetricsRegistry;
class MetricCounter;
class MetricGauge;
class TimeWeightedHistogram;
struct FluidFlow;

/** A capacity-limited shared resource (link, memory, core pool, ...). */
class FluidResource
{
  public:
    FluidResource(std::string name, Rate capacity);

    const std::string &name() const { return name_; }
    Rate capacity() const { return capacity_; }

    /**
     * Change capacity (e.g., Gen3 -> Gen4 sweep); caller must notify the
     * network via capacityChanged(). Zero is legal — active flows
     * demanding a zero-capacity resource are parked at rate 0 (no
     * divide-by-zero, no NaN rates) until a later setCapacity +
     * capacityChanged restores them. Negative or non-finite panics.
     */
    void setCapacity(Rate capacity);

    /** Total units served through this resource so far. */
    double totalServed() const { return totalServed_; }

    /** Units served per accounting category. */
    const std::map<std::string, double> &servedByCategory() const
    {
        return served_;
    }

    /** Served units for one category (0 when absent). */
    double served(const std::string &category) const;

    /**
     * Time-average utilization in [0, 1] over the window since the last
     * resetAccounting(), given the current simulation time.
     */
    double utilization(Time now) const;

    /** Clear accounting counters and restart the utilization window. */
    void resetAccounting(Time now);

    /**
     * Time-weighted utilization history recorded by the network's
     * metrics instrumentation (nullptr when metrics are disabled).
     */
    const TimeWeightedHistogram *utilizationHistory() const
    {
        return utilHist_;
    }

  private:
    friend class FluidNetwork;

    void
    account(const std::string &category, double units)
    {
        totalServed_ += units;
        served_[category] += units;
    }

    std::string name_;
    Rate capacity_;
    double totalServed_ = 0.0;
    std::map<std::string, double> served_;
    Time windowStart_ = 0.0;

    // scratch space for the allocator
    double allocScratch_ = 0.0;
    double weightScratch_ = 0.0;

    // incremental-solver state
    std::size_t index_ = 0; ///< creation order (solve iteration order)
    bool dirty_ = false;    ///< queued in the network's dirty set
    std::uint64_t mark_ = 0; ///< BFS visit epoch (gather + components)
    /** Flows demanding this resource, as (flow, demand index) pairs. */
    std::vector<std::pair<FluidFlow *, std::uint32_t>> members_;

    // metrics instrumentation (inert while metrics are disabled)
    double loadScratch_ = 0.0;
    TimeWeightedHistogram *utilHist_ = nullptr;
};

/** One resource consumed by a flow: @p weight units per base unit. */
struct FlowDemand
{
    FluidResource *resource;
    double weight;
};

/** Identifier for an active flow. */
using FlowId = std::uint64_t;

/** Everything needed to launch a flow. */
struct FlowSpec
{
    /** Accounting category (e.g., "formatting", "data_load"). */
    std::string category;

    /** Total size in base units. */
    double size = 0.0;

    /** Maximum base rate (0 = uncapped). */
    double rateCap = 0.0;

    /**
     * Fair-share weight: under contention flows receive base rates
     * proportional to this weight (progressive filling raises rate by
     * weight * t). Use it to model processor-time fairness: a CPU task
     * costing c core-seconds per sample with fairWeight 1/c receives the
     * same core-time as its peers, so its wall time scales with its
     * work, as an OS scheduler would arrange.
     */
    double fairWeight = 1.0;

    /** Resources consumed while the flow runs. */
    std::vector<FlowDemand> demands;

    /** Invoked (once) at completion time. */
    std::function<void(Time)> onComplete;
};

/**
 * Solver-internal per-flow state. Exposed at namespace scope only so
 * FluidResource can hold back-pointers; not part of the public API.
 */
struct FluidFlow
{
    FlowId id;
    std::string category;
    double remaining;
    double rateCap;
    double fairWeight;
    std::vector<FlowDemand> demands;
    std::function<void(Time)> onComplete;
    double rate = 0.0;
    bool frozen = false; ///< allocator scratch

    /** Slot of demand i in demands[i].resource->members_. */
    std::vector<std::uint32_t> memberSlot;
    std::uint64_t mark = 0; ///< BFS visit epoch (gather + components)

    // parallel-advance scratch (written in phase 1, read in phase 2)
    double servedScratch = 0.0;
    bool drainedScratch = false;
};

/**
 * Accumulates (resource, weight) pairs, merging duplicates — convenient
 * when a flow's route shares links with other parts of its path (e.g.,
 * reads spread over many SSDs behind common switches).
 */
class DemandSet
{
  public:
    /** Add @p weight on @p resource (merged if already present). */
    void add(FluidResource *resource, double weight);

    /** Add a list of demands, each scaled by @p scale. */
    void add(const std::vector<FlowDemand> &demands, double scale = 1.0);

    /** Materialize the merged demand vector. */
    std::vector<FlowDemand> build() const;

    bool empty() const { return weights_.empty(); }

  private:
    std::map<FluidResource *, double> weights_;
};

/**
 * The contention engine. Owns resources, runs flows, and keeps the
 * completion event in the EventQueue up to date.
 */
class FluidNetwork
{
  public:
    /**
     * Solver strategy. Incremental (the default) re-solves only the
     * connected components touched since the last solve; FullResolve
     * re-solves every component on every mutation. Both run the same
     * per-component progressive filling, so their results are
     * bit-identical — FullResolve exists as the reference baseline for
     * equivalence tests and for perf comparisons in bench/sim_perf.
     *
     * GlobalResolve is the legacy seed algorithm: one *coupled*
     * progressive-filling loop over the whole network, whose uniform
     * rate-raising step is the min across all components at once. Its
     * exact allocations equal the per-component solve, but the
     * floating-point summation order differs when several asymmetric
     * components are active (identical results on single-component or
     * symmetric networks, which covers the pinned session goldens).
     * Kept as the perf baseline bench/sim_perf measures speedups
     * against, and for A/B-ing the decomposition itself.
     */
    enum class SolverMode
    {
        Incremental,
        FullResolve,
        GlobalResolve,
    };

    /** Cumulative solver work counters (monotonic; for bench/tests). */
    struct SolverStats
    {
        std::uint64_t solves = 0; ///< solve passes that re-solved work
        std::uint64_t fullSolves = 0; ///< passes forced by FullResolve
        std::uint64_t componentsSolved = 0;
        std::uint64_t flowsSolved = 0; ///< sum of solved component sizes
    };

    /**
     * RAII batch scope: while at least one FlowBatch is alive, startFlow
     * and cancelFlow defer the rate solve and completion (re)scheduling;
     * the dirty set accumulates and is solved once when the outermost
     * batch ends. Launching k flows at one timestamp costs one solve
     * instead of k. Rates and the completion event are stale inside the
     * scope, so don't query flowRate() or step the EventQueue until the
     * batch closes. Results are bit-identical to unbatched calls because
     * component solves are from-scratch (see docs/PERFORMANCE.md).
     */
    class FlowBatch
    {
      public:
        explicit FlowBatch(FluidNetwork &net) : net_(net)
        {
            net_.beginBatch();
        }
        ~FlowBatch() { net_.endBatch(); }

        FlowBatch(const FlowBatch &) = delete;
        FlowBatch &operator=(const FlowBatch &) = delete;

      private:
        FluidNetwork &net_;
    };

    explicit FluidNetwork(EventQueue &eq);
    ~FluidNetwork();

    FluidNetwork(const FluidNetwork &) = delete;
    FluidNetwork &operator=(const FluidNetwork &) = delete;

    /**
     * Create a resource owned by the network. The current name prefix
     * (see setNamePrefix) is prepended to @p name, so component builders
     * stay prefix-oblivious while multiple sessions share one network.
     */
    FluidResource *addResource(const std::string &name, Rate capacity);

    /**
     * Namespace prefix prepended to every subsequently added resource
     * name ("job0." while building that job's server, "" afterwards).
     * Per-session namespacing keeps name lookups and the "util.<name>"
     * metric space collision-free when N servers share one network;
     * the dirty-set solver is unaffected (components are discovered
     * structurally, not by name).
     */
    void setNamePrefix(std::string prefix) { namePrefix_ = std::move(prefix); }

    /** Current resource-name prefix ("" when unset). */
    const std::string &namePrefix() const { return namePrefix_; }

    /** Look up a resource by name (nullptr when absent). */
    FluidResource *findResource(const std::string &name) const;

    /** All resources, in creation order. */
    const std::vector<std::unique_ptr<FluidResource>> &resources() const
    {
        return resources_;
    }

    /**
     * Launch a flow. Completion fires through the EventQueue. A flow of
     * size 0 completes via an immediate event.
     */
    FlowId startFlow(FlowSpec spec);

    /** Abort a flow without firing its completion callback. */
    void cancelFlow(FlowId id);

    /** Current allocated base rate of a flow (0 when unknown/starved). */
    double flowRate(FlowId id) const;

    /** Remaining base units of a flow (0 when unknown). */
    double flowRemaining(FlowId id) const;

    /** Number of in-flight flows. */
    std::size_t numActive() const { return flows_.size(); }

    /** Notify the network that any resource capacity may have changed. */
    void capacityChanged();

    /**
     * Notify the network that one resource's capacity changed. Only the
     * component containing @p resource is re-solved (in Incremental
     * mode), so prefer this over the global overload for single-device
     * degradation/repair events.
     */
    void capacityChanged(FluidResource *resource);

    /** Select the solver strategy (takes effect at the next solve). */
    void setSolverMode(SolverMode mode) { mode_ = mode; }
    SolverMode solverMode() const { return mode_; }

    /** Cumulative solver work counters. */
    const SolverStats &solverStats() const { return stats_; }

    /**
     * Enable the parallel per-flow scan (advance + completion scan +
     * parallel phase of the solve bookkeeping) on @p workers threads.
     * The parallel path only engages once the network holds at least
     * @p minFlows flows — below that the fork-join overhead dominates.
     * Pass workers < 2 to disable. Returns false when the build was
     * configured without TB_PARALLEL_SOLVER (request ignored). The
     * TB_PARALLEL_SOLVER environment variable (worker count) enables
     * this at construction. Results are bit-identical to the serial
     * path: per-flow arithmetic is unchanged and all reductions /
     * accounting merges happen in flow-id order (docs/PERFORMANCE.md).
     */
    bool setParallelWorkers(unsigned workers, std::size_t minFlows = 512);

    /** Workers the parallel scan would use (1 = serial). */
    unsigned parallelWorkers() const
    {
        return pool_ ? pool_->workers() : 1;
    }

    /**
     * Reset accounting on all resources (and, when metrics are
     * attached, their utilization histories — the metrics window is
     * the accounting window).
     */
    void resetAccounting();

    /**
     * Reset accounting on the creation-order index range
     * [begin, end) only — one session's slice of a shared network.
     * A session opening its measurement window must not clear the
     * served totals of co-resident sessions; a standalone server's
     * range covers every resource, making this identical to the
     * global reset.
     */
    void resetAccounting(std::size_t begin, std::size_t end);

    /**
     * Attach a metrics registry. When the registry is enabled, the
     * network keeps one time-weighted utilization histogram per
     * resource ("util.<resource>") — rates are piecewise constant
     * between flow events, so every inter-event interval becomes one
     * exact histogram sample — plus flow lifecycle counters. A
     * disabled registry (or nullptr) leaves the network exactly on the
     * uninstrumented path. Must be attached before flows start.
     */
    void attachMetrics(MetricsRegistry *metrics);

    /**
     * Record utilization up to the current time (also charges per-
     * category accounting for in-flight flows). No-op when metrics are
     * not attached, so an uninstrumented run's accounting is
     * bit-identical with or without the call.
     */
    void flushMetrics();

  private:
    /** Charge elapsed progress to all flows. */
    void advanceTo(Time now);
    void advanceParallel(double dt);

    /** Solve + reschedule, unless inside a FlowBatch. */
    void afterMutation();
    void beginBatch() { ++batchDepth_; }
    void endBatch();

    /** Re-solve the components reachable from the dirty set. */
    void solveDirty();
    /** Progressive filling over compFlows_/compRes_ (sorted). */
    void solveComponent();
    /** Legacy coupled whole-network progressive filling. */
    void solveGlobal();

    void scheduleCompletion();
    void completeEarliest();
    void instrumentResource(FluidResource *r);

    /** Register/unregister a flow in its resources' member lists. */
    void addMembership(FluidFlow &flow);
    void removeMembership(FluidFlow &flow);

    void
    markDirty(FluidResource *r)
    {
        if (!r->dirty_) {
            r->dirty_ = true;
            dirtyResources_.push_back(r);
        }
    }

    /** Mark a flow and all resources it touches dirty. */
    void
    markFlowDirty(FluidFlow &flow)
    {
        for (const auto &d : flow.demands)
            markDirty(d.resource);
        dirtyFlowIds_.push_back(flow.id);
    }

    bool
    parallelActive() const
    {
        return pool_ != nullptr && flows_.size() >= parallelMinFlows_;
    }

    void rebuildFlowArray();

    EventQueue &eq_;
    std::vector<std::unique_ptr<FluidResource>> resources_;
    std::string namePrefix_;
    std::map<FlowId, FluidFlow> flows_;
    FlowId nextId_ = 1;
    Time lastAdvance_ = 0.0;
    EventId pending_{};

    SolverMode mode_ = SolverMode::Incremental;
    SolverStats stats_;
    unsigned batchDepth_ = 0;
    std::uint64_t mark_ = 0; ///< BFS epoch source

    /** Resources touched since the last solve (dirty_ flag set). */
    std::vector<FluidResource *> dirtyResources_;
    /**
     * Flows touched since the last solve, by id — ids, not pointers,
     * because a flow can be started and cancelled within one batch.
     * Also covers demandless (cap-only) flows, which no resource
     * member list reaches.
     */
    std::vector<FlowId> dirtyFlowIds_;

    // reusable solver scratch (cleared per solve; avoids per-event
    // allocation in the hot path)
    std::vector<FluidFlow *> affected_;
    std::vector<FluidResource *> resQueue_;
    std::vector<FluidFlow *> compFlows_;
    std::vector<FluidResource *> compRes_;

    // parallel scan state
    std::unique_ptr<ParallelFor> pool_;
    std::size_t parallelMinFlows_ = 512;
    std::vector<FluidFlow *> flowArray_; ///< flows_ values, id order
    bool flowArrayStale_ = true;

    // metrics instrumentation (all nullptr when metrics are disabled)
    MetricsRegistry *metrics_ = nullptr;
    MetricCounter *flowsStartedCtr_ = nullptr;
    MetricCounter *flowsCompletedCtr_ = nullptr;
    MetricCounter *flowsCancelledCtr_ = nullptr;
    MetricGauge *activeFlowsGauge_ = nullptr;
};

} // namespace tb

#endif // TRAINBOX_FLUID_FLUID_HH
