/**
 * @file
 * Fluid-flow contention engine.
 *
 * Every shared hardware resource in the simulated server — a PCIe link
 * direction, the root complex, host DRAM bandwidth, the CPU core pool, an
 * SSD's read path, an FPGA prep pipeline, an Ethernet link — is a
 * FluidResource with a capacity in units/second. Work moves through the
 * system as FluidFlows: a flow has a size in *base units* (bytes for a DMA,
 * samples for a prep task) and a set of per-resource demand weights (units
 * of that resource consumed per base unit served). A DMA that crosses three
 * PCIe links and writes host memory is one flow with four demands.
 *
 * At any instant the engine assigns each active flow a base rate via
 * progressive filling (weighted max-min fairness with optional per-flow
 * rate caps — a prep task cannot exceed its parallelism, a device port
 * cannot exceed its line rate). Rates are piecewise constant between flow
 * arrivals/departures; the engine advances remaining sizes lazily and keeps
 * exactly one completion event pending in the EventQueue.
 *
 * The engine also performs per-category accounting on every resource
 * (bytes moved for "data_load" vs "formatting" vs ...), which is what the
 * host-resource figures of the paper (Figs 10/11/22) are built from.
 */

#ifndef TRAINBOX_FLUID_FLUID_HH
#define TRAINBOX_FLUID_FLUID_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.hh"

namespace tb {

class MetricsRegistry;
class MetricCounter;
class MetricGauge;
class TimeWeightedHistogram;

/** A capacity-limited shared resource (link, memory, core pool, ...). */
class FluidResource
{
  public:
    FluidResource(std::string name, Rate capacity);

    const std::string &name() const { return name_; }
    Rate capacity() const { return capacity_; }

    /** Change capacity (e.g., Gen3 -> Gen4 sweep); caller must recompute. */
    void setCapacity(Rate capacity);

    /** Total units served through this resource so far. */
    double totalServed() const { return totalServed_; }

    /** Units served per accounting category. */
    const std::map<std::string, double> &servedByCategory() const
    {
        return served_;
    }

    /** Served units for one category (0 when absent). */
    double served(const std::string &category) const;

    /**
     * Time-average utilization in [0, 1] over the window since the last
     * resetAccounting(), given the current simulation time.
     */
    double utilization(Time now) const;

    /** Clear accounting counters and restart the utilization window. */
    void resetAccounting(Time now);

    /**
     * Time-weighted utilization history recorded by the network's
     * metrics instrumentation (nullptr when metrics are disabled).
     */
    const TimeWeightedHistogram *utilizationHistory() const
    {
        return utilHist_;
    }

  private:
    friend class FluidNetwork;

    void
    account(const std::string &category, double units)
    {
        totalServed_ += units;
        served_[category] += units;
    }

    std::string name_;
    Rate capacity_;
    double totalServed_ = 0.0;
    std::map<std::string, double> served_;
    Time windowStart_ = 0.0;

    // scratch space for the allocator
    double allocScratch_ = 0.0;
    double weightScratch_ = 0.0;

    // metrics instrumentation (inert while metrics are disabled)
    double loadScratch_ = 0.0;
    TimeWeightedHistogram *utilHist_ = nullptr;
};

/** One resource consumed by a flow: @p weight units per base unit. */
struct FlowDemand
{
    FluidResource *resource;
    double weight;
};

/** Identifier for an active flow. */
using FlowId = std::uint64_t;

/** Everything needed to launch a flow. */
struct FlowSpec
{
    /** Accounting category (e.g., "formatting", "data_load"). */
    std::string category;

    /** Total size in base units. */
    double size = 0.0;

    /** Maximum base rate (0 = uncapped). */
    double rateCap = 0.0;

    /**
     * Fair-share weight: under contention flows receive base rates
     * proportional to this weight (progressive filling raises rate by
     * weight * t). Use it to model processor-time fairness: a CPU task
     * costing c core-seconds per sample with fairWeight 1/c receives the
     * same core-time as its peers, so its wall time scales with its
     * work, as an OS scheduler would arrange.
     */
    double fairWeight = 1.0;

    /** Resources consumed while the flow runs. */
    std::vector<FlowDemand> demands;

    /** Invoked (once) at completion time. */
    std::function<void(Time)> onComplete;
};

/**
 * Accumulates (resource, weight) pairs, merging duplicates — convenient
 * when a flow's route shares links with other parts of its path (e.g.,
 * reads spread over many SSDs behind common switches).
 */
class DemandSet
{
  public:
    /** Add @p weight on @p resource (merged if already present). */
    void add(FluidResource *resource, double weight);

    /** Add a list of demands, each scaled by @p scale. */
    void add(const std::vector<FlowDemand> &demands, double scale = 1.0);

    /** Materialize the merged demand vector. */
    std::vector<FlowDemand> build() const;

    bool empty() const { return weights_.empty(); }

  private:
    std::map<FluidResource *, double> weights_;
};

/**
 * The contention engine. Owns resources, runs flows, and keeps the
 * completion event in the EventQueue up to date.
 */
class FluidNetwork
{
  public:
    explicit FluidNetwork(EventQueue &eq);
    ~FluidNetwork();

    FluidNetwork(const FluidNetwork &) = delete;
    FluidNetwork &operator=(const FluidNetwork &) = delete;

    /** Create a resource owned by the network. */
    FluidResource *addResource(const std::string &name, Rate capacity);

    /** Look up a resource by name (nullptr when absent). */
    FluidResource *findResource(const std::string &name) const;

    /** All resources, in creation order. */
    const std::vector<std::unique_ptr<FluidResource>> &resources() const
    {
        return resources_;
    }

    /**
     * Launch a flow. Completion fires through the EventQueue. A flow of
     * size 0 completes via an immediate event.
     */
    FlowId startFlow(FlowSpec spec);

    /** Abort a flow without firing its completion callback. */
    void cancelFlow(FlowId id);

    /** Current allocated base rate of a flow (0 when unknown/starved). */
    double flowRate(FlowId id) const;

    /** Remaining base units of a flow (0 when unknown). */
    double flowRemaining(FlowId id) const;

    /** Number of in-flight flows. */
    std::size_t numActive() const { return flows_.size(); }

    /** Notify the network that a resource capacity changed. */
    void capacityChanged();

    /**
     * Reset accounting on all resources (and, when metrics are
     * attached, their utilization histories — the metrics window is
     * the accounting window).
     */
    void resetAccounting();

    /**
     * Attach a metrics registry. When the registry is enabled, the
     * network keeps one time-weighted utilization histogram per
     * resource ("util.<resource>") — rates are piecewise constant
     * between flow events, so every inter-event interval becomes one
     * exact histogram sample — plus flow lifecycle counters. A
     * disabled registry (or nullptr) leaves the network exactly on the
     * uninstrumented path. Must be attached before flows start.
     */
    void attachMetrics(MetricsRegistry *metrics);

    /**
     * Record utilization up to the current time (also charges per-
     * category accounting for in-flight flows). No-op when metrics are
     * not attached, so an uninstrumented run's accounting is
     * bit-identical with or without the call.
     */
    void flushMetrics();

  private:
    struct Flow
    {
        FlowId id;
        std::string category;
        double remaining;
        double rateCap;
        double fairWeight;
        std::vector<FlowDemand> demands;
        std::function<void(Time)> onComplete;
        double rate = 0.0;
        bool frozen = false; // allocator scratch
    };

    /** Charge elapsed progress to all flows, then recompute rates. */
    void advanceTo(Time now);
    void recomputeRates();
    void scheduleCompletion();
    void completeEarliest();
    void instrumentResource(FluidResource *r);

    EventQueue &eq_;
    std::vector<std::unique_ptr<FluidResource>> resources_;
    std::map<FlowId, Flow> flows_;
    FlowId nextId_ = 1;
    Time lastAdvance_ = 0.0;
    EventId pending_{};

    // metrics instrumentation (all nullptr when metrics are disabled)
    MetricsRegistry *metrics_ = nullptr;
    MetricCounter *flowsStartedCtr_ = nullptr;
    MetricCounter *flowsCompletedCtr_ = nullptr;
    MetricCounter *flowsCancelledCtr_ = nullptr;
    MetricGauge *activeFlowsGauge_ = nullptr;
};

} // namespace tb

#endif // TRAINBOX_FLUID_FLUID_HH
