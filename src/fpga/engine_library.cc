#include "fpga/engine_library.hh"

namespace tb {
namespace fpga {

// Budgets are the paper's reported synthesis results (Tables II/III).

EngineSpec
jpegDecoderEngine()
{
    return {"jpeg_decoder", {704'000.0, 665'000.0, 0.0, 1'040.0}};
}

EngineSpec
cropEngine()
{
    return {"crop", {500.0, 300.0, 0.0, 27.0}};
}

EngineSpec
mirrorEngine()
{
    return {"mirror", {6'500.0, 4'700.0, 0.0, 381.0}};
}

EngineSpec
gaussianNoiseEngine()
{
    return {"gaussian_noise", {24'500.0, 33'000.0, 80.0, 400.0}};
}

EngineSpec
castEngine()
{
    return {"cast", {5'700.0, 3'000.0, 0.0, 240.0}};
}

EngineSpec
spectrogramEngine()
{
    return {"spectrogram", {622'000.0, 755'000.0, 228.0, 0.0}};
}

EngineSpec
maskingEngine()
{
    return {"masking", {21'000.0, 17'000.0, 53.0, 260.0}};
}

EngineSpec
normEngine()
{
    return {"norm", {14'000.0, 11'000.0, 0.0, 0.0}};
}

EngineSpec
melFilterBankEngine()
{
    return {"mel_filter_bank", {103'000.0, 119'000.0, 208.0, 572.0}};
}

EngineSpec
ethernetProtocolEngine()
{
    return {"ethernet+protocol", {166'000.0, 169'000.0, 1'024.0, 0.0}};
}

EngineSpec
p2pHandlerEngine()
{
    return {"p2p_handler", {22'700.0, 24'700.0, 153.0, 0.0}};
}

Floorplan
imageFloorplan()
{
    Floorplan plan(xcvu9p());
    plan.add(jpegDecoderEngine());
    plan.add(cropEngine());
    plan.add(mirrorEngine());
    plan.add(gaussianNoiseEngine());
    plan.add(castEngine());
    plan.add(ethernetProtocolEngine());
    plan.add(p2pHandlerEngine());
    return plan;
}

Floorplan
audioFloorplan()
{
    Floorplan plan(xcvu9p());
    plan.add(spectrogramEngine());
    plan.add(maskingEngine());
    plan.add(normEngine());
    plan.add(melFilterBankEngine());
    plan.add(ethernetProtocolEngine());
    plan.add(p2pHandlerEngine());
    return plan;
}

} // namespace fpga
} // namespace tb
