#include "fpga/resource_model.hh"

namespace tb {
namespace fpga {

Resources &
Resources::operator+=(const Resources &o)
{
    lut += o.lut;
    ff += o.ff;
    bram += o.bram;
    dsp += o.dsp;
    return *this;
}

Resources
Resources::operator+(const Resources &o) const
{
    Resources r = *this;
    r += o;
    return r;
}

const Device &
xcvu9p()
{
    static const Device dev{"XCVU9P",
                            {1'182'240.0, 2'364'480.0, 2'160.0, 6'840.0}};
    return dev;
}

void
Floorplan::add(const EngineSpec &engine)
{
    engines_.push_back(engine);
}

Resources
Floorplan::total() const
{
    Resources r;
    for (const auto &e : engines_)
        r += e.cost;
    return r;
}

Utilization
Floorplan::utilization() const
{
    const Resources t = total();
    const Resources &c = device_.capacity;
    return {100.0 * t.lut / c.lut, 100.0 * t.ff / c.ff,
            100.0 * t.bram / c.bram, 100.0 * t.dsp / c.dsp};
}

Utilization
Floorplan::utilizationOf(const EngineSpec &engine) const
{
    const Resources &c = device_.capacity;
    return {100.0 * engine.cost.lut / c.lut,
            100.0 * engine.cost.ff / c.ff,
            100.0 * engine.cost.bram / c.bram,
            100.0 * engine.cost.dsp / c.dsp};
}

bool
Floorplan::fits() const
{
    const Resources t = total();
    const Resources &c = device_.capacity;
    return t.lut <= c.lut && t.ff <= c.ff && t.bram <= c.bram &&
           t.dsp <= c.dsp;
}

ReconfigEstimate
reconfigurationCost(const Floorplan &from, const Floorplan &to,
                    Bytes full_bitstream_bytes, double config_port_bw)
{
    ReconfigEstimate est;
    double changed_lut = 0.0;
    for (const auto &engine : to.engines()) {
        bool resident = false;
        for (const auto &old_engine : from.engines())
            if (old_engine.name == engine.name) {
                resident = true;
                break;
            }
        if (!resident) {
            changed_lut += engine.cost.lut;
            ++est.enginesChanged;
        }
    }
    est.bitstreamBytes = full_bitstream_bytes * changed_lut /
                         to.device().capacity.lut;
    est.seconds = est.bitstreamBytes / config_port_bw;
    return est;
}

} // namespace fpga
} // namespace tb
