/**
 * @file
 * Engine library: the resource budgets of every data-preparation engine
 * the paper implements on the XCVU9P (Tables II and III), plus the
 * shared interfacing blocks (Ethernet + protocol parser, P2P handler)
 * and the image/audio floorplans of Fig 17.
 */

#ifndef TRAINBOX_FPGA_ENGINE_LIBRARY_HH
#define TRAINBOX_FPGA_ENGINE_LIBRARY_HH

#include "fpga/resource_model.hh"

namespace tb {
namespace fpga {

/** Image preparation engines (Table II). */
EngineSpec jpegDecoderEngine();
EngineSpec cropEngine();
EngineSpec mirrorEngine();
EngineSpec gaussianNoiseEngine();
EngineSpec castEngine();

/** Audio preparation engines (Table III). */
EngineSpec spectrogramEngine();
EngineSpec maskingEngine();
EngineSpec normEngine();
EngineSpec melFilterBankEngine();

/** Shared infrastructure blocks. */
EngineSpec ethernetProtocolEngine();
EngineSpec p2pHandlerEngine();

/** Full image-version floorplan on the XCVU9P (Table II). */
Floorplan imageFloorplan();

/** Full audio-version floorplan on the XCVU9P (Table III). */
Floorplan audioFloorplan();

} // namespace fpga
} // namespace tb

#endif // TRAINBOX_FPGA_ENGINE_LIBRARY_HH
