/**
 * @file
 * FPGA resource model (Tables II/III).
 *
 * The paper prototypes the prep accelerator on a Xilinx XCVU9P and
 * reports per-engine LUT/FF/BRAM/DSP consumption. We cannot synthesize
 * RTL here, so the model carries the published per-engine budgets and
 * reproduces the utilization arithmetic: composing a pipeline, checking
 * fit, and printing the tables (see DESIGN.md substitution notes).
 */

#ifndef TRAINBOX_FPGA_RESOURCE_MODEL_HH
#define TRAINBOX_FPGA_RESOURCE_MODEL_HH

#include <string>
#include <vector>

#include "common/units.hh"

namespace tb {
namespace fpga {

/** A resource vector: LUTs, flip-flops, BRAM36 blocks, DSP slices. */
struct Resources
{
    double lut = 0.0;
    double ff = 0.0;
    double bram = 0.0;
    double dsp = 0.0;

    Resources &operator+=(const Resources &o);
    Resources operator+(const Resources &o) const;
};

/** A device's total capacity. */
struct Device
{
    std::string name;
    Resources capacity;
};

/** Xilinx XCVU9P (the paper's prototype part). */
const Device &xcvu9p();

/** One engine (pipeline stage) with its resource budget. */
struct EngineSpec
{
    std::string name;
    Resources cost;
};

/** Utilization of one resource class in percent. */
struct Utilization
{
    double lutPct = 0.0;
    double ffPct = 0.0;
    double bramPct = 0.0;
    double dspPct = 0.0;
};

/** A set of engines placed on one device. */
class Floorplan
{
  public:
    explicit Floorplan(const Device &device) : device_(device) {}

    void add(const EngineSpec &engine);

    const std::vector<EngineSpec> &engines() const { return engines_; }
    const Device &device() const { return device_; }

    /** Summed resource consumption. */
    Resources total() const;

    /** Utilization of the whole plan. */
    Utilization utilization() const;

    /** Utilization of a single engine on this device. */
    Utilization utilizationOf(const EngineSpec &engine) const;

    /** True when every resource class fits the device. */
    bool fits() const;

  private:
    Device device_;
    std::vector<EngineSpec> engines_;
};

/** Cost of switching a device between floorplans. */
struct ReconfigEstimate
{
    /** Partial bitstream size (bytes). */
    Bytes bitstreamBytes = 0.0;

    /** Reprogramming time through the configuration port. */
    double seconds = 0.0;

    /** Engines reprogrammed (shared interfacing blocks are kept). */
    std::size_t enginesChanged = 0;
};

/**
 * Partial-reconfiguration cost from one floorplan to another (§V-C):
 * engines present in both plans (by name) — the interfacing logic —
 * stay resident; the partial bitstream covers only the changed engines,
 * sized by their LUT share of the device.
 *
 * @param fullBitstreamBytes full-device bitstream size
 * @param configPortBw       configuration-port bandwidth (bytes/s)
 */
ReconfigEstimate reconfigurationCost(const Floorplan &from,
                                     const Floorplan &to,
                                     Bytes fullBitstreamBytes = 180.0e6,
                                     double configPortBw = 400.0e6);

} // namespace fpga
} // namespace tb

#endif // TRAINBOX_FPGA_RESOURCE_MODEL_HH
