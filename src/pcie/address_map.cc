#include "pcie/address_map.hh"

#include "common/logging.hh"

namespace tb {
namespace pcie {

AddressMap::AddressMap(const Topology &topo, std::uint64_t bar_bytes,
                       std::uint64_t base_address)
    : topo_(topo)
{
    panic_if(bar_bytes == 0, "zero BAR size");
    windows_.resize(topo.numNodes());

    // Depth-first enumeration: devices get consecutive BARs; a
    // switch's window spans its subtree. Children of a node were
    // appended in creation order, so recursion keeps windows compact.
    std::uint64_t cursor = base_address;
    // Recursive lambda via explicit stack of (node, post-visit flag).
    struct Frame
    {
        NodeId node;
        bool post;
    };
    std::vector<Frame> stack{{topo.root(), false}};
    std::vector<std::uint64_t> starts(topo.numNodes(), 0);
    while (!stack.empty()) {
        const Frame f = stack.back();
        stack.pop_back();
        const Node &n = topo.node(f.node);
        if (!f.post) {
            starts[f.node] = cursor;
            if (n.kind == NodeKind::Device) {
                windows_[f.node] = {cursor, bar_bytes};
                cursor += bar_bytes;
            } else {
                stack.push_back({f.node, true});
                for (auto it = n.children.rbegin();
                     it != n.children.rend(); ++it)
                    stack.push_back({*it, false});
            }
        } else {
            windows_[f.node] = {starts[f.node],
                                cursor - starts[f.node]};
        }
    }
}

AddressRange
AddressMap::deviceBar(NodeId device) const
{
    panic_if(device < 0 ||
                 device >= static_cast<NodeId>(windows_.size()),
             "bad node id %d", device);
    panic_if(topo_.node(device).kind != NodeKind::Device,
             "node %d is not a device", device);
    return windows_[device];
}

AddressRange
AddressMap::subtreeWindow(NodeId node) const
{
    panic_if(node < 0 || node >= static_cast<NodeId>(windows_.size()),
             "bad node id %d", node);
    return windows_[node];
}

NodeId
AddressMap::resolve(std::uint64_t addr) const
{
    for (NodeId id = 0; id < static_cast<NodeId>(windows_.size());
         ++id) {
        if (topo_.node(id).kind == NodeKind::Device &&
            windows_[id].contains(addr))
            return id;
    }
    return kInvalidNode;
}

NodeId
AddressMap::nextHop(NodeId current, std::uint64_t addr) const
{
    const Node &n = topo_.node(current);
    // A downstream port claims the address: forward down.
    for (NodeId child : n.children)
        if (windows_[child].contains(addr))
            return child;
    // Not below us: forward toward the root (the RC terminates what
    // nothing claims — host memory or an unmapped address).
    return n.parent;
}

std::vector<NodeId>
AddressMap::route(NodeId src, std::uint64_t addr) const
{
    std::vector<NodeId> path;
    if (resolve(addr) == kInvalidNode)
        return path;
    NodeId cur = src;
    // Bounded by twice the tree depth; guard against map corruption.
    for (std::size_t hops = 0; hops < 4 * windows_.size(); ++hops) {
        if (topo_.node(cur).kind == NodeKind::Device && cur != src &&
            windows_[cur].contains(addr))
            return path;
        const NodeId next = nextHop(cur, addr);
        panic_if(next == kInvalidNode,
                 "packet fell off the root while routing");
        path.push_back(next);
        cur = next;
    }
    panic("routing loop in address map");
}

} // namespace pcie
} // namespace tb
