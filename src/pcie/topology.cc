#include "pcie/topology.hh"

#include <algorithm>

#include "common/logging.hh"

namespace tb {
namespace pcie {

Topology::Topology(FluidNetwork &net, const std::string &rcName,
                   Rate rcBandwidth)
    : net_(net)
{
    rc_ = net_.addResource(rcName, rcBandwidth);
    Node root;
    root.id = 0;
    root.name = rcName;
    root.kind = NodeKind::RootComplex;
    root.parent = kInvalidNode;
    nodes_.push_back(std::move(root));
}

NodeId
Topology::addNode(const std::string &name, NodeKind kind, NodeId parent,
                  Rate linkBw)
{
    // Malformed attachment requests are recoverable: topology builders
    // consume machine descriptions, and a bad description should fail
    // the build, not abort the process. The tree is left untouched.
    if (parent < 0 || parent >= static_cast<NodeId>(nodes_.size())) {
        lastError_ = "invalid parent node " + std::to_string(parent) +
                     " for \"" + name + "\"";
        warn("%s", lastError_.c_str());
        return kInvalidNode;
    }
    if (nodes_[parent].kind == NodeKind::Device) {
        lastError_ = "cannot attach \"" + name + "\" under device node " +
                     nodes_[parent].name;
        warn("%s", lastError_.c_str());
        return kInvalidNode;
    }

    Node n;
    n.id = static_cast<NodeId>(nodes_.size());
    n.name = name;
    n.kind = kind;
    n.parent = parent;
    n.up = net_.addResource(name + ".up", linkBw);
    n.down = net_.addResource(name + ".down", linkBw);
    nodes_[parent].children.push_back(n.id);
    nodes_.push_back(std::move(n));
    return nodes_.back().id;
}

NodeId
Topology::addSwitch(const std::string &name, NodeId parent, Rate linkBw)
{
    return addNode(name, NodeKind::Switch, parent, linkBw);
}

NodeId
Topology::addDevice(const std::string &name, NodeId parent, Rate linkBw)
{
    return addNode(name, NodeKind::Device, parent, linkBw);
}

const Node &
Topology::node(NodeId id) const
{
    panic_if(id < 0 || id >= static_cast<NodeId>(nodes_.size()),
             "invalid node id %d", id);
    return nodes_[id];
}

int
Topology::depth(NodeId id) const
{
    int d = 0;
    for (NodeId cur = id; nodes_[cur].parent != kInvalidNode;
         cur = nodes_[cur].parent)
        ++d;
    return d;
}

NodeId
Topology::lca(NodeId a, NodeId b) const
{
    int da = depth(a);
    int db = depth(b);
    while (da > db) {
        a = nodes_[a].parent;
        --da;
    }
    while (db > da) {
        b = nodes_[b].parent;
        --db;
    }
    while (a != b) {
        a = nodes_[a].parent;
        b = nodes_[b].parent;
    }
    return a;
}

bool
Topology::routePassesRoot(NodeId src, NodeId dst) const
{
    return lca(src, dst) == root();
}

std::size_t
Topology::routeHops(NodeId src, NodeId dst) const
{
    const NodeId common = lca(src, dst);
    return static_cast<std::size_t>((depth(src) - depth(common)) +
                                    (depth(dst) - depth(common)));
}

std::vector<FlowDemand>
Topology::routeDemands(NodeId src, NodeId dst, double bytesPerUnit) const
{
    std::vector<FlowDemand> demands;
    if (src == dst)
        return demands;

    const NodeId common = lca(src, dst);
    // Upstream half: src climbs to the LCA on 'up' link directions.
    for (NodeId cur = src; cur != common; cur = nodes_[cur].parent)
        demands.push_back({nodes_[cur].up, bytesPerUnit});
    // Downstream half: LCA descends to dst on 'down' link directions.
    std::vector<FluidResource *> downs;
    for (NodeId cur = dst; cur != common; cur = nodes_[cur].parent)
        downs.push_back(nodes_[cur].down);
    for (auto it = downs.rbegin(); it != downs.rend(); ++it)
        demands.push_back({*it, bytesPerUnit});

    if (common == root())
        demands.push_back({rc_, 2.0 * bytesPerUnit});
    return demands;
}

std::vector<FlowDemand>
Topology::hostRouteDemands(NodeId node_id, bool toDevice,
                           double bytesPerUnit) const
{
    std::vector<FlowDemand> demands;
    if (node_id == root()) {
        demands.push_back({rc_, bytesPerUnit});
        return demands;
    }
    for (NodeId cur = node_id; cur != root(); cur = nodes_[cur].parent)
        demands.push_back(
            {toDevice ? nodes_[cur].down : nodes_[cur].up, bytesPerUnit});
    demands.push_back({rc_, bytesPerUnit});
    return demands;
}

void
Topology::scaleLinkBandwidth(double factor)
{
    panic_if(factor <= 0.0, "non-positive link scale %g", factor);
    for (auto &n : nodes_) {
        if (n.up)
            n.up->setCapacity(n.up->capacity() * factor);
        if (n.down)
            n.down->setCapacity(n.down->capacity() * factor);
    }
    rc_->setCapacity(rc_->capacity() * factor);
    net_.capacityChanged();
}

} // namespace pcie
} // namespace tb
