/**
 * @file
 * PCIe interconnect model.
 *
 * The fabric is the usual tree: one root complex, switches as internal
 * nodes, devices at the leaves (§II-C of the paper). Every link is modeled
 * as two FluidResources, one per direction (PCIe is full duplex), and the
 * root complex itself is a resource representing the host's aggregate
 * ingress+egress bandwidth — the single-point hotspot that TrainBox's
 * clustering removes.
 *
 * Routing is deterministic tree routing: up to the lowest common ancestor,
 * then down. routeDemands() converts a (src, dst) pair into the list of
 * FlowDemands a DMA between the two endpoints must place on the fabric;
 * peer-to-peer transfers under a common switch never touch the root
 * complex, which is exactly the property Step 3 (clustering) exploits.
 */

#ifndef TRAINBOX_PCIE_TOPOLOGY_HH
#define TRAINBOX_PCIE_TOPOLOGY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fluid/fluid.hh"

namespace tb {
namespace pcie {

/** Node index within a topology. */
using NodeId = std::int32_t;

/** Marker for "no node". */
inline constexpr NodeId kInvalidNode = -1;

/** What a tree node is. */
enum class NodeKind { RootComplex, Switch, Device };

/** Common PCIe generation per-direction x16 bandwidths (bytes/s). */
namespace gen {
inline constexpr Rate gen3x16 = 16.0e9;
inline constexpr Rate gen4x16 = 32.0e9;
} // namespace gen

/** One node of the PCIe tree. */
struct Node
{
    NodeId id;
    std::string name;
    NodeKind kind;
    NodeId parent;
    std::vector<NodeId> children;
    /** Traffic toward the root (this node -> parent). */
    FluidResource *up = nullptr;
    /** Traffic away from the root (parent -> this node). */
    FluidResource *down = nullptr;
};

/**
 * A PCIe tree bound to a FluidNetwork. The topology owns no resources
 * itself; they live in the network so accounting is uniform.
 */
class Topology
{
  public:
    /**
     * @param net       contention engine the link resources live in
     * @param rcName    resource name for the root complex
     * @param rcBandwidth aggregate root-complex bandwidth (bytes/s)
     */
    Topology(FluidNetwork &net, const std::string &rcName,
             Rate rcBandwidth);

    /**
     * Attach a switch under @p parent with per-direction link bw.
     * Returns kInvalidNode — with the reason in lastError() — when
     * @p parent does not exist or is a device; the tree is unchanged.
     */
    NodeId addSwitch(const std::string &name, NodeId parent, Rate linkBw);

    /** Attach a device under @p parent; same error contract. */
    NodeId addDevice(const std::string &name, NodeId parent, Rate linkBw);

    /** Reason the most recent addSwitch/addDevice returned kInvalidNode. */
    const std::string &lastError() const { return lastError_; }

    /** The root complex node id (always 0). */
    NodeId root() const { return 0; }

    const Node &node(NodeId id) const;
    std::size_t numNodes() const { return nodes_.size(); }

    /** The root-complex bandwidth resource. */
    FluidResource *rcResource() const { return rc_; }

    /** Lowest common ancestor of two nodes. */
    NodeId lca(NodeId a, NodeId b) const;

    /** True when a transfer src -> dst crosses the root complex. */
    bool routePassesRoot(NodeId src, NodeId dst) const;

    /** Number of links on the route src -> dst. */
    std::size_t routeHops(NodeId src, NodeId dst) const;

    /**
     * Demands a flow of @p bytesPerUnit bytes per base unit places on the
     * fabric when moving src -> dst peer-to-peer. A P2P route that crosses
     * the root complex consumes RC bandwidth with weight 2x: the packet
     * enters the RC fabric from one root port and leaves through another
     * (§IV-D — this is why Step 2 alone does not relieve the RC, Fig 19).
     * Host-terminated transfers (hostRouteDemands) cross the boundary
     * once. src == dst yields no demands.
     */
    std::vector<FlowDemand> routeDemands(NodeId src, NodeId dst,
                                         double bytesPerUnit = 1.0) const;

    /**
     * Demands for a transfer between the host (root) and a node.
     * Direction toward the device uses 'down' links and vice versa.
     */
    std::vector<FlowDemand> hostRouteDemands(NodeId node, bool toDevice,
                                             double bytesPerUnit = 1.0) const;

    /** Scale every link capacity by @p factor (e.g., Gen3 -> Gen4 = 2). */
    void scaleLinkBandwidth(double factor);

    /** Depth of a node (root = 0). */
    int depth(NodeId id) const;

  private:
    NodeId addNode(const std::string &name, NodeKind kind, NodeId parent,
                   Rate linkBw);

    FluidNetwork &net_;
    FluidResource *rc_;
    std::vector<Node> nodes_;
    std::string lastError_;
};

} // namespace pcie
} // namespace tb

#endif // TRAINBOX_PCIE_TOPOLOGY_HH
