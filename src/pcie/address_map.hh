/**
 * @file
 * PCIe address map and switch forwarding (§IV-C).
 *
 * "At the boot time, the system assigns a unique PCIe address range to
 * each PCIe device and port of PCIe switches. Later, PCIe switches
 * forward (rather than broadcast) packets based on their destination
 * address and the address range of each port."
 *
 * This module models exactly that: an enumeration pass assigns each
 * device a BAR window; every switch port holds the union of the ranges
 * beneath it; forwarding walks the tree hop by hop from any source to
 * the port owning the destination address. It is the mechanism that
 * makes peer-to-peer DMA (Step 2) possible without host involvement,
 * and tests verify that address-based forwarding reproduces the
 * tree-routing used by the performance model.
 */

#ifndef TRAINBOX_PCIE_ADDRESS_MAP_HH
#define TRAINBOX_PCIE_ADDRESS_MAP_HH

#include <cstdint>
#include <vector>

#include "pcie/topology.hh"

namespace tb {
namespace pcie {

/** A [base, base+size) window in PCIe memory space. */
struct AddressRange
{
    std::uint64_t base = 0;
    std::uint64_t size = 0;

    bool
    contains(std::uint64_t addr) const
    {
        return addr >= base && addr - base < size;
    }

    std::uint64_t end() const { return base + size; }
};

/**
 * Boot-time enumeration result: per-device BARs plus per-node subtree
 * windows (what a switch's downstream port claims).
 */
class AddressMap
{
  public:
    /**
     * Enumerate a topology depth-first, assigning @p barBytes of
     * address space to each device starting at @p baseAddress.
     */
    AddressMap(const Topology &topo,
               std::uint64_t barBytes = 1ull << 24,
               std::uint64_t baseAddress = 0x4'0000'0000ull);

    /** BAR window of a device node; fatal() for non-device nodes. */
    AddressRange deviceBar(NodeId device) const;

    /** Subtree window claimed by a node's upstream port. */
    AddressRange subtreeWindow(NodeId node) const;

    /** Device owning an address, or kInvalidNode. */
    NodeId resolve(std::uint64_t addr) const;

    /**
     * One forwarding decision: the next hop a packet at @p current
     * takes toward @p addr. A switch forwards down the child whose
     * window contains the address, else up to its parent; the root
     * forwards down or terminates at the host (kInvalidNode means the
     * address belongs to host memory / nothing below this root).
     */
    NodeId nextHop(NodeId current, std::uint64_t addr) const;

    /**
     * Full path a memory-write packet takes from @p src to @p addr
     * (excluding src, including the destination device). Empty when the
     * address resolves nowhere.
     */
    std::vector<NodeId> route(NodeId src, std::uint64_t addr) const;

  private:
    const Topology &topo_;
    std::vector<AddressRange> windows_; // per node: subtree window
};

} // namespace pcie
} // namespace tb

#endif // TRAINBOX_PCIE_ADDRESS_MAP_HH
