/**
 * @file
 * Unit helpers and literal-style constants used across the simulator.
 *
 * Conventions: time is in seconds (double), data in bytes (double — flows
 * are fluid), rates in bytes/second, compute in core-seconds.
 */

#ifndef TRAINBOX_COMMON_UNITS_HH
#define TRAINBOX_COMMON_UNITS_HH

namespace tb {

/** Simulated time in seconds. */
using Time = double;

/** Data volume in bytes (fluid, hence double). */
using Bytes = double;

/** Transfer or service rate in bytes (or work units) per second. */
using Rate = double;

namespace units {

inline constexpr double KiB = 1024.0;
inline constexpr double MiB = 1024.0 * KiB;
inline constexpr double GiB = 1024.0 * MiB;

inline constexpr double KB = 1e3;
inline constexpr double MB = 1e6;
inline constexpr double GB = 1e9;
inline constexpr double TB = 1e12;

inline constexpr double us = 1e-6;
inline constexpr double ms = 1e-3;

/** Gbit/s expressed in bytes/s (Ethernet-style rates). */
inline constexpr double Gbps = 1e9 / 8.0;

} // namespace units
} // namespace tb

#endif // TRAINBOX_COMMON_UNITS_HH
