#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace tb {

namespace {
bool quietFlag = false;

void
vemit(const char *prefix, const char *file, int line, const char *fmt,
      va_list args)
{
    std::fprintf(stderr, "%s: ", prefix);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, " [%s:%d]\n", file, line);
}
} // namespace

void
setQuiet(bool quiet)
{
    quietFlag = quiet;
}

bool
quiet()
{
    return quietFlag;
}

namespace detail {

void
logMessage(LogLevel level, const char *file, int line, const char *fmt, ...)
{
    if (level == LogLevel::Info && quietFlag)
        return;
    va_list args;
    va_start(args, fmt);
    vemit(level == LogLevel::Warn ? "warn" : "info", file, line, fmt, args);
    va_end(args);
}

void
logPanic(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vemit("panic", file, line, fmt, args);
    va_end(args);
    std::abort();
}

void
logFatal(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vemit("fatal", file, line, fmt, args);
    va_end(args);
    std::exit(1);
}

} // namespace detail
} // namespace tb
