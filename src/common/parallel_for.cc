#include "common/parallel_for.hh"

namespace tb {

ParallelFor::ParallelFor(unsigned workers)
{
    if (workers < 2)
        return;
    threads_.reserve(workers - 1);
    for (unsigned i = 1; i < workers; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ParallelFor::~ParallelFor()
{
    {
        std::lock_guard lock(mu_);
        stop_ = true;
    }
    start_.notify_all();
    for (auto &t : threads_)
        t.join();
}

std::pair<std::size_t, std::size_t>
ParallelFor::chunk(unsigned idx) const
{
    const std::size_t w = threads_.size() + 1;
    const std::size_t per = (n_ + w - 1) / w;
    const std::size_t begin = std::min(n_, idx * per);
    const std::size_t end = std::min(n_, begin + per);
    return {begin, end};
}

void
ParallelFor::workerLoop(unsigned idx)
{
    std::uint64_t seen = 0;
    for (;;) {
        std::unique_lock lock(mu_);
        start_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_)
            return;
        seen = generation_;
        const auto [begin, end] = chunk(idx);
        lock.unlock();

        if (begin < end)
            (*fn_)(begin, end);

        lock.lock();
        if (--outstanding_ == 0)
            done_.notify_all();
    }
}

void
ParallelFor::run(std::size_t n,
                 const std::function<void(std::size_t, std::size_t)> &fn)
{
    if (threads_.empty() || n < 2) {
        if (n > 0)
            fn(0, n);
        return;
    }
    std::unique_lock lock(mu_);
    fn_ = &fn;
    n_ = n;
    outstanding_ = static_cast<unsigned>(threads_.size());
    ++generation_;
    lock.unlock();
    start_.notify_all();

    const auto [begin, end] = chunk(0);
    if (begin < end)
        fn(begin, end);

    lock.lock();
    done_.wait(lock, [&] { return outstanding_ == 0; });
    fn_ = nullptr;
}

} // namespace tb
