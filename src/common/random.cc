#include "common/random.hh"

#include <cmath>

namespace tb {

namespace {

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> [0, 1)
    return ((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>((*this)() % span);
}

double
Rng::gaussian()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spare_;
    }
    double u1 = 0.0;
    while (u1 == 0.0)
        u1 = uniform();
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(2.0 * M_PI * u2);
    hasSpare_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

Rng
Rng::split()
{
    return Rng((*this)());
}

} // namespace tb
