/**
 * @file
 * Minimal table formatter used by the benchmark harness to print
 * paper-style rows, both as aligned ASCII and as CSV.
 */

#ifndef TRAINBOX_COMMON_TABLE_HH
#define TRAINBOX_COMMON_TABLE_HH

#include <cstdio>
#include <string>
#include <vector>

namespace tb {

/**
 * A simple column-aligned table. Cells are strings; numeric helpers format
 * with a fixed precision. Rows are printed on demand.
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Begin a new row. Subsequent add() calls fill cells left to right. */
    Table &row();

    /** Append a string cell to the current row. */
    Table &add(std::string cell);

    /** Append a formatted double cell. */
    Table &add(double value, int precision = 3);

    /** Append an integer cell. */
    Table &add(long long value);
    Table &add(int value) { return add(static_cast<long long>(value)); }
    Table &add(std::size_t value)
    {
        return add(static_cast<long long>(value));
    }

    /** Print as aligned ASCII to @p out (default stdout). */
    void print(std::FILE *out = stdout) const;

    /** Print as CSV to @p out. */
    void printCsv(std::FILE *out = stdout) const;

    /** Number of data rows so far. */
    std::size_t numRows() const { return rows_.size(); }

    /** Access to a cell (row-major), for tests. */
    const std::string &cell(std::size_t row, std::size_t col) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given precision into a string. */
std::string formatDouble(double value, int precision = 3);

} // namespace tb

#endif // TRAINBOX_COMMON_TABLE_HH
