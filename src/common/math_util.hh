/**
 * @file
 * Small numeric helpers shared by the simulator and the kernels.
 */

#ifndef TRAINBOX_COMMON_MATH_UTIL_HH
#define TRAINBOX_COMMON_MATH_UTIL_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

namespace tb {

/** Clamp @p v into [lo, hi]. */
template <typename T>
constexpr T
clamp(T v, T lo, T hi)
{
    return std::min(std::max(v, lo), hi);
}

/** True when |a - b| <= tol * max(1, |a|, |b|). */
inline bool
approxEqual(double a, double b, double tol = 1e-9)
{
    const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
    return std::fabs(a - b) <= tol * scale;
}

/** Arithmetic mean of a non-empty vector. */
inline double
mean(const std::vector<double> &v)
{
    return std::accumulate(v.begin(), v.end(), 0.0) /
           static_cast<double>(v.size());
}

/** Geometric mean of a non-empty vector of positive values. */
inline double
geomean(const std::vector<double> &v)
{
    double log_sum = 0.0;
    for (double x : v)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(v.size()));
}

/** Round up to the next power of two (returns 1 for 0). */
inline std::uint64_t
nextPow2(std::uint64_t x)
{
    if (x <= 1)
        return 1;
    --x;
    x |= x >> 1;
    x |= x >> 2;
    x |= x >> 4;
    x |= x >> 8;
    x |= x >> 16;
    x |= x >> 32;
    return x + 1;
}

/** True when x is a power of two (and nonzero). */
inline bool
isPow2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Integer ceiling division for positive operands. */
template <typename T>
constexpr T
divCeil(T a, T b)
{
    return (a + b - 1) / b;
}

} // namespace tb

#endif // TRAINBOX_COMMON_MATH_UTIL_HH
