/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * Every stochastic component takes an explicit Rng so simulations and tests
 * are reproducible; there is no global generator.
 */

#ifndef TRAINBOX_COMMON_RANDOM_HH
#define TRAINBOX_COMMON_RANDOM_HH

#include <cstdint>

namespace tb {

/**
 * xoshiro256** generator. Small, fast, and good enough for workload
 * synthesis and augmentation randomness. Satisfies the C++
 * UniformRandomBitGenerator requirements.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Seed via splitmix64 so similar seeds give unrelated streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    /** Next raw 64-bit value. */
    result_type operator()();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] (inclusive). */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal via Box-Muller. */
    double gaussian();

    /** Normal with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Derive an unrelated child stream (for per-component generators). */
    Rng split();

  private:
    std::uint64_t s_[4];
    bool hasSpare_ = false;
    double spare_ = 0.0;
};

} // namespace tb

#endif // TRAINBOX_COMMON_RANDOM_HH
