/**
 * @file
 * CRC32C (Castagnoli) checksums.
 *
 * The polynomial (0x1EDC6F41, reflected 0x82F63B78) is the one NVMe,
 * iSCSI, and ext4 use for end-to-end data protection — the natural
 * choice for the sample envelopes the prep path carries (see
 * prep/integrity.hh and docs/ROBUSTNESS.md). Table-driven, processes a
 * byte per step; fast enough for test-sized payloads and deterministic
 * everywhere.
 */

#ifndef TRAINBOX_COMMON_CRC32C_HH
#define TRAINBOX_COMMON_CRC32C_HH

#include <cstddef>
#include <cstdint>

namespace tb {

/**
 * CRC32C of @p len bytes at @p data, continuing from @p crc (pass the
 * previous call's return value to checksum incrementally; 0 to start).
 * crc32c("123456789") == 0xE3069283, the standard check value.
 */
std::uint32_t crc32c(const void *data, std::size_t len,
                     std::uint32_t crc = 0);

} // namespace tb

#endif // TRAINBOX_COMMON_CRC32C_HH
