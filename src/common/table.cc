#include "common/table.hh"

#include <algorithm>
#include <cstdarg>

#include "common/logging.hh"

namespace tb {

std::string
formatDouble(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

Table &
Table::row()
{
    rows_.emplace_back();
    return *this;
}

Table &
Table::add(std::string cell)
{
    panic_if(rows_.empty(), "Table::add before Table::row");
    panic_if(rows_.back().size() >= headers_.size(),
             "Table row has more cells than headers");
    rows_.back().push_back(std::move(cell));
    return *this;
}

Table &
Table::add(double value, int precision)
{
    return add(formatDouble(value, precision));
}

Table &
Table::add(long long value)
{
    return add(std::to_string(value));
}

const std::string &
Table::cell(std::size_t row, std::size_t col) const
{
    panic_if(row >= rows_.size() || col >= rows_[row].size(),
             "Table::cell out of range");
    return rows_[row][col];
}

void
Table::print(std::FILE *out) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            const std::string &cell = c < cells.size() ? cells[c] : "";
            std::fprintf(out, "%-*s", static_cast<int>(widths[c] + 2),
                         cell.c_str());
        }
        std::fprintf(out, "\n");
    };

    print_row(headers_);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    for (std::size_t i = 0; i < total; ++i)
        std::fputc('-', out);
    std::fputc('\n', out);
    for (const auto &row : rows_)
        print_row(row);
}

void
Table::printCsv(std::FILE *out) const
{
    auto print_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c)
            std::fprintf(out, "%s%s", c ? "," : "", cells[c].c_str());
        std::fprintf(out, "\n");
    };
    print_row(headers_);
    for (const auto &row : rows_)
        print_row(row);
}

} // namespace tb
