/**
 * @file
 * Minimal fork-join worker pool for data-parallel scans.
 *
 * ParallelFor::run(n, fn) splits the index range [0, n) into one
 * contiguous chunk per worker and blocks until every chunk is done; the
 * calling thread executes chunk 0 itself. This is the replicant-opera
 * `parallel_for` idiom: each invocation is a single fork-join over a flat
 * range, with any reduction done per-thread inside @p fn and merged by
 * the caller (e.g. a per-thread minimum merged under a mutex).
 *
 * The pool is deliberately dumb — no work stealing, no task queue —
 * because the fluid solver's per-flow scans are uniform-cost and the
 * fork-join happens once or twice per simulation event. Threads are
 * created once and parked on a condition variable between runs.
 */

#ifndef TRAINBOX_COMMON_PARALLEL_FOR_HH
#define TRAINBOX_COMMON_PARALLEL_FOR_HH

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tb {

class ParallelFor
{
  public:
    /**
     * Create a pool running chunks on @p workers threads total (the
     * caller counts as one; @p workers - 1 threads are spawned).
     * A value < 2 spawns nothing and run() degenerates to a plain loop.
     */
    explicit ParallelFor(unsigned workers);
    ~ParallelFor();

    ParallelFor(const ParallelFor &) = delete;
    ParallelFor &operator=(const ParallelFor &) = delete;

    /** Total workers including the calling thread. */
    unsigned workers() const
    {
        return static_cast<unsigned>(threads_.size()) + 1;
    }

    /**
     * Invoke fn(begin, end) over a partition of [0, n), one contiguous
     * chunk per worker, and wait for all chunks. fn must be safe to call
     * concurrently from multiple threads on disjoint ranges.
     */
    void run(std::size_t n,
             const std::function<void(std::size_t, std::size_t)> &fn);

  private:
    void workerLoop(unsigned idx);

    /** Chunk boundaries for worker @p idx of the current run. */
    std::pair<std::size_t, std::size_t> chunk(unsigned idx) const;

    std::vector<std::thread> threads_;

    std::mutex mu_;
    std::condition_variable start_;
    std::condition_variable done_;
    const std::function<void(std::size_t, std::size_t)> *fn_ = nullptr;
    std::size_t n_ = 0;
    std::uint64_t generation_ = 0;
    unsigned outstanding_ = 0;
    bool stop_ = false;
};

} // namespace tb

#endif // TRAINBOX_COMMON_PARALLEL_FOR_HH
