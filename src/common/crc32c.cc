#include "common/crc32c.hh"

#include <array>

namespace tb {

namespace {

/** Byte-indexed lookup table for the reflected polynomial 0x82F63B78. */
std::array<std::uint32_t, 256>
makeTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit)
            c = (c & 1u) ? (c >> 1) ^ 0x82F63B78u : c >> 1;
        table[i] = c;
    }
    return table;
}

} // namespace

std::uint32_t
crc32c(const void *data, std::size_t len, std::uint32_t crc)
{
    static const std::array<std::uint32_t, 256> table = makeTable();
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t c = ~crc;
    for (std::size_t i = 0; i < len; ++i)
        c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    return ~c;
}

} // namespace tb
