/**
 * @file
 * Status/error reporting helpers in the gem5 tradition.
 *
 * panic()  — an internal invariant was violated (a simulator bug); aborts.
 * fatal()  — the user asked for something impossible (bad configuration);
 *            exits with an error code.
 * warn()   — something is approximated or suspicious but survivable.
 * inform() — plain status output.
 */

#ifndef TRAINBOX_COMMON_LOGGING_HH
#define TRAINBOX_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace tb {

/** Severity of a log message. */
enum class LogLevel { Info, Warn, Fatal, Panic };

namespace detail {

/** Format and emit a message; terminates for Fatal/Panic. */
[[gnu::format(printf, 4, 5)]]
void logMessage(LogLevel level, const char *file, int line,
                const char *fmt, ...);

[[noreturn]]
[[gnu::format(printf, 3, 4)]]
void logPanic(const char *file, int line, const char *fmt, ...);

[[noreturn]]
[[gnu::format(printf, 3, 4)]]
void logFatal(const char *file, int line, const char *fmt, ...);

} // namespace detail

/** Suppress / restore inform() output (tests use this to keep logs quiet). */
void setQuiet(bool quiet);

/** @return true when inform() output is suppressed. */
bool quiet();

#define panic(...) \
    ::tb::detail::logPanic(__FILE__, __LINE__, __VA_ARGS__)

#define fatal(...) \
    ::tb::detail::logFatal(__FILE__, __LINE__, __VA_ARGS__)

#define warn(...) \
    ::tb::detail::logMessage(::tb::LogLevel::Warn, __FILE__, __LINE__, \
                             __VA_ARGS__)

#define inform(...) \
    ::tb::detail::logMessage(::tb::LogLevel::Info, __FILE__, __LINE__, \
                             __VA_ARGS__)

/** panic() unless the condition holds. */
#define panic_if(cond, ...)                                              \
    do {                                                                 \
        if (cond)                                                        \
            panic(__VA_ARGS__);                                          \
    } while (0)

/** fatal() unless the condition holds. */
#define fatal_if(cond, ...)                                              \
    do {                                                                 \
        if (cond)                                                        \
            fatal(__VA_ARGS__);                                          \
    } while (0)

} // namespace tb

#endif // TRAINBOX_COMMON_LOGGING_HH
