#include "prep/image/image.hh"

#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace tb {

Image::Image(int w, int h, int c)
    : width(w), height(h), channels(c),
      pixels(static_cast<std::size_t>(w) * h * c, 0)
{
    panic_if(w < 0 || h < 0 || c < 0, "bad image shape %dx%dx%d", w, h, c);
}

std::uint8_t
Image::at(int x, int y, int c) const
{
    panic_if(x < 0 || x >= width || y < 0 || y >= height || c < 0 ||
                 c >= channels,
             "image access (%d,%d,%d) out of %dx%dx%d", x, y, c, width,
             height, channels);
    return pixels[(static_cast<std::size_t>(y) * width + x) * channels + c];
}

std::uint8_t &
Image::at(int x, int y, int c)
{
    panic_if(x < 0 || x >= width || y < 0 || y >= height || c < 0 ||
                 c >= channels,
             "image access (%d,%d,%d) out of %dx%dx%d", x, y, c, width,
             height, channels);
    return pixels[(static_cast<std::size_t>(y) * width + x) * channels + c];
}

double
meanAbsDifference(const Image &a, const Image &b)
{
    panic_if(a.width != b.width || a.height != b.height ||
                 a.channels != b.channels,
             "image shape mismatch");
    if (a.pixels.empty())
        return 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < a.pixels.size(); ++i)
        sum += std::fabs(static_cast<double>(a.pixels[i]) - b.pixels[i]);
    return sum / static_cast<double>(a.pixels.size());
}

double
psnr(const Image &a, const Image &b)
{
    panic_if(a.width != b.width || a.height != b.height ||
                 a.channels != b.channels,
             "image shape mismatch");
    double mse = 0.0;
    for (std::size_t i = 0; i < a.pixels.size(); ++i) {
        const double d =
            static_cast<double>(a.pixels[i]) - b.pixels[i];
        mse += d * d;
    }
    mse /= static_cast<double>(a.pixels.size());
    if (mse == 0.0)
        return std::numeric_limits<double>::infinity();
    return 10.0 * std::log10(255.0 * 255.0 / mse);
}

} // namespace tb
