/**
 * @file
 * Minimal interleaved 8-bit image container used by the functional data
 * preparation pipeline (decode/crop/mirror/noise/cast).
 */

#ifndef TRAINBOX_PREP_IMAGE_IMAGE_HH
#define TRAINBOX_PREP_IMAGE_IMAGE_HH

#include <cstdint>
#include <vector>

namespace tb {

/** Row-major, channel-interleaved 8-bit image. */
struct Image
{
    int width = 0;
    int height = 0;
    int channels = 0;
    std::vector<std::uint8_t> pixels;

    Image() = default;
    Image(int w, int h, int c);

    /** Pixel accessors (bounds-checked in debug via panic). */
    std::uint8_t at(int x, int y, int c) const;
    std::uint8_t &at(int x, int y, int c);

    std::size_t size() const { return pixels.size(); }
    bool empty() const { return pixels.empty(); }

    /** Equal dimensions and identical pixel data. */
    bool operator==(const Image &o) const = default;
};

/** Mean absolute per-pixel difference between two same-shape images. */
double meanAbsDifference(const Image &a, const Image &b);

/** PSNR (dB) between two same-shape images; inf for identical. */
double psnr(const Image &a, const Image &b);

} // namespace tb

#endif // TRAINBOX_PREP_IMAGE_IMAGE_HH
