/**
 * @file
 * Image formatting and augmentation operators (Fig 4 / Fig 17 engines):
 * crop, mirror, gaussian noise, bilinear resize, and the char -> bf16
 * cast that produces the tensor loaded into the accelerator.
 */

#ifndef TRAINBOX_PREP_IMAGE_IMAGE_OPS_HH
#define TRAINBOX_PREP_IMAGE_IMAGE_OPS_HH

#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "prep/image/image.hh"

namespace tb {
namespace imageops {

/** Crop a WxH window at (x0, y0). fatal()s if out of bounds. */
Image crop(const Image &src, int x0, int y0, int w, int h);

/** Random crop of the given size (augmentation, §III-D). */
Image randomCrop(const Image &src, int w, int h, Rng &rng);

/** Center crop. */
Image centerCrop(const Image &src, int w, int h);

/** Horizontal mirror (the paper's flip augmentation example). */
Image mirrorHorizontal(const Image &src);

/** Add clamped gaussian noise with the given stddev. */
Image addGaussianNoise(const Image &src, double stddev, Rng &rng);

/** Bilinear resize. */
Image resizeBilinear(const Image &src, int w, int h);

/**
 * Cast to a normalized float tensor in [0, 1], CHW layout, rounded
 * through bf16 (the accelerator's input precision — the type-casting
 * data amplification of §III-C).
 */
std::vector<float> castToFloatTensor(const Image &src);

/** Round a float through bf16 (truncate mantissa to 8 bits, RNE). */
float toBf16(float v);

} // namespace imageops
} // namespace tb

#endif // TRAINBOX_PREP_IMAGE_IMAGE_OPS_HH
