#include "prep/image/image_ops.hh"

#include <cmath>
#include <cstring>

#include "common/logging.hh"
#include "common/math_util.hh"

namespace tb {
namespace imageops {

Image
crop(const Image &src, int x0, int y0, int w, int h)
{
    fatal_if(x0 < 0 || y0 < 0 || x0 + w > src.width ||
                 y0 + h > src.height || w <= 0 || h <= 0,
             "crop %dx%d@(%d,%d) outside %dx%d image", w, h, x0, y0,
             src.width, src.height);
    Image out(w, h, src.channels);
    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
            for (int c = 0; c < src.channels; ++c)
                out.at(x, y, c) = src.at(x0 + x, y0 + y, c);
    return out;
}

Image
randomCrop(const Image &src, int w, int h, Rng &rng)
{
    fatal_if(w > src.width || h > src.height, "crop larger than image");
    const int x0 = static_cast<int>(
        rng.uniformInt(0, src.width - w));
    const int y0 = static_cast<int>(
        rng.uniformInt(0, src.height - h));
    return crop(src, x0, y0, w, h);
}

Image
centerCrop(const Image &src, int w, int h)
{
    fatal_if(w > src.width || h > src.height, "crop larger than image");
    return crop(src, (src.width - w) / 2, (src.height - h) / 2, w, h);
}

Image
mirrorHorizontal(const Image &src)
{
    Image out(src.width, src.height, src.channels);
    for (int y = 0; y < src.height; ++y)
        for (int x = 0; x < src.width; ++x)
            for (int c = 0; c < src.channels; ++c)
                out.at(x, y, c) = src.at(src.width - 1 - x, y, c);
    return out;
}

Image
addGaussianNoise(const Image &src, double stddev, Rng &rng)
{
    Image out = src;
    for (auto &p : out.pixels) {
        const double v = p + rng.gaussian(0.0, stddev);
        p = static_cast<std::uint8_t>(
            clamp(static_cast<int>(std::lround(v)), 0, 255));
    }
    return out;
}

Image
resizeBilinear(const Image &src, int w, int h)
{
    fatal_if(w <= 0 || h <= 0, "bad resize target %dx%d", w, h);
    Image out(w, h, src.channels);
    const double sx = static_cast<double>(src.width) / w;
    const double sy = static_cast<double>(src.height) / h;
    for (int y = 0; y < h; ++y) {
        const double fy = (y + 0.5) * sy - 0.5;
        const int y0 = clamp(static_cast<int>(std::floor(fy)), 0,
                             src.height - 1);
        const int y1 = std::min(y0 + 1, src.height - 1);
        const double wy = clamp(fy - y0, 0.0, 1.0);
        for (int x = 0; x < w; ++x) {
            const double fx = (x + 0.5) * sx - 0.5;
            const int x0 = clamp(static_cast<int>(std::floor(fx)), 0,
                                 src.width - 1);
            const int x1 = std::min(x0 + 1, src.width - 1);
            const double wx = clamp(fx - x0, 0.0, 1.0);
            for (int c = 0; c < src.channels; ++c) {
                const double top = (1.0 - wx) * src.at(x0, y0, c) +
                                   wx * src.at(x1, y0, c);
                const double bot = (1.0 - wx) * src.at(x0, y1, c) +
                                   wx * src.at(x1, y1, c);
                out.at(x, y, c) = static_cast<std::uint8_t>(clamp(
                    static_cast<int>(
                        std::lround((1.0 - wy) * top + wy * bot)),
                    0, 255));
            }
        }
    }
    return out;
}

float
toBf16(float v)
{
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    // Round-to-nearest-even on the truncated 16 mantissa bits.
    const std::uint32_t rounding = 0x7FFF + ((bits >> 16) & 1);
    bits = (bits + rounding) & 0xFFFF0000u;
    float out;
    std::memcpy(&out, &bits, sizeof(out));
    return out;
}

std::vector<float>
castToFloatTensor(const Image &src)
{
    std::vector<float> out(static_cast<std::size_t>(src.width) *
                           src.height * src.channels);
    std::size_t i = 0;
    for (int c = 0; c < src.channels; ++c)
        for (int y = 0; y < src.height; ++y)
            for (int x = 0; x < src.width; ++x)
                out[i++] = toBf16(src.at(x, y, c) / 255.0f);
    return out;
}

} // namespace imageops
} // namespace tb
