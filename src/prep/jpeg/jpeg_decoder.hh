/**
 * @file
 * Baseline sequential-DCT JPEG decoder.
 *
 * Supports: JFIF baseline (SOF0), 8-bit precision, 1 or 3 components,
 * sampling factors 1 or 2, standard and custom DQT/DHT tables, restart
 * intervals. This is the CPU-heavy "data formatting" operation of the
 * paper (and the Huffman phase is the irreducibly sequential part that
 * motivates FPGA offload, §V-B).
 */

#ifndef TRAINBOX_PREP_JPEG_JPEG_DECODER_HH
#define TRAINBOX_PREP_JPEG_JPEG_DECODER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "prep/image/image.hh"

namespace tb {
namespace jpeg {

/** Decode result: image plus error reporting. */
struct DecodeResult
{
    Image image;
    bool ok = false;
    std::string error;
};

/** Decode a baseline JPEG byte stream. Never throws; reports errors. */
DecodeResult decodeJpeg(const std::uint8_t *data, std::size_t size);

/** Convenience overload. */
DecodeResult decodeJpeg(const std::vector<std::uint8_t> &data);

} // namespace jpeg
} // namespace tb

#endif // TRAINBOX_PREP_JPEG_JPEG_DECODER_HH
