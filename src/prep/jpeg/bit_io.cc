#include "prep/jpeg/bit_io.hh"

#include "common/logging.hh"

namespace tb {
namespace jpeg {

void
BitWriter::emitByte(std::uint8_t b)
{
    out_.push_back(b);
    if (b == 0xFF)
        out_.push_back(0x00); // byte stuffing
}

void
BitWriter::put(std::uint32_t bits, int count)
{
    panic_if(count < 0 || count > 25, "bad bit count %d", count);
    acc_ = (acc_ << count) | (bits & ((1u << count) - 1));
    bitCount_ += count;
    while (bitCount_ >= 8) {
        bitCount_ -= 8;
        emitByte(static_cast<std::uint8_t>((acc_ >> bitCount_) & 0xFF));
    }
}

void
BitWriter::flush()
{
    if (bitCount_ > 0) {
        const int pad = 8 - bitCount_;
        put((1u << pad) - 1, pad); // pad with 1-bits
    }
}

bool
BitReader::fill()
{
    while (bitCount_ <= 24) {
        if (hitMarker_ || pos_ >= size_) {
            hitMarker_ = true;
            return bitCount_ > 0;
        }
        std::uint8_t b = data_[pos_];
        if (b == 0xFF) {
            if (pos_ + 1 < size_ && data_[pos_ + 1] == 0x00) {
                pos_ += 2; // stuffed byte
            } else {
                hitMarker_ = true; // real marker: stop
                return bitCount_ > 0;
            }
        } else {
            ++pos_;
        }
        acc_ = (acc_ << 8) | b;
        bitCount_ += 8;
    }
    return true;
}

std::int32_t
BitReader::get(int count)
{
    panic_if(count < 0 || count > 25, "bad bit count %d", count);
    if (count == 0)
        return 0;
    if (bitCount_ < count && !fill())
        return -1;
    if (bitCount_ < count)
        return -1;
    bitCount_ -= count;
    return static_cast<std::int32_t>((acc_ >> bitCount_) &
                                     ((1u << count) - 1));
}

} // namespace jpeg
} // namespace tb
