#include "prep/jpeg/jpeg_decoder.hh"

#include <array>
#include <cmath>
#include <map>
#include <memory>

#include "common/math_util.hh"
#include "prep/jpeg/bit_io.hh"
#include "prep/jpeg/dct.hh"
#include "prep/jpeg/huffman.hh"
#include "prep/jpeg/jpeg_common.hh"

namespace tb {
namespace jpeg {

namespace {

/**
 * Upper bound on width x height. A fuzzed SOF0 can claim up to
 * 65535 x 65535 (~17 GB per component plane); real inputs this decoder
 * serves are dataset images, so cap allocations at 64 Mpixels.
 */
constexpr std::uint64_t kMaxPixels = 1ull << 26;

/** EXTEND: map magnitude bits back to a signed value (T.81 F.2.2.1). */
int
extend(int v, int cat)
{
    if (cat == 0)
        return 0;
    return v < (1 << (cat - 1)) ? v - (1 << cat) + 1 : v;
}

struct ComponentState
{
    int id = 0;
    int h = 1, v = 1;
    int quantTable = 0;
    int dcTable = 0, acTable = 0;
    int planeW = 0, planeH = 0;
    std::vector<float> plane;
    int pred = 0;
};

struct DecoderState
{
    DecoderState(const std::uint8_t *d, std::size_t s)
        : data(d), size(s)
    {
    }

    const std::uint8_t *data;
    std::size_t size;
    std::size_t pos = 0;

    int width = 0, height = 0;
    int restartInterval = 0;
    std::vector<ComponentState> comps;
    std::map<int, std::array<std::uint16_t, 64>> quant;
    std::map<int, std::unique_ptr<HuffmanDecoder>> dcTables;
    std::map<int, std::unique_ptr<HuffmanDecoder>> acTables;

    std::string error;

    bool
    fail(const std::string &msg)
    {
        if (error.empty())
            error = msg;
        return false;
    }

    bool
    need(std::size_t n) const
    {
        return pos + n <= size;
    }

    int
    u8()
    {
        return data[pos++];
    }

    int
    u16()
    {
        const int v = (data[pos] << 8) | data[pos + 1];
        pos += 2;
        return v;
    }
};

bool
parseDqt(DecoderState &st, std::size_t seg_end)
{
    while (st.pos < seg_end) {
        if (!st.need(1))
            return st.fail("truncated DQT");
        const int pq_tq = st.u8();
        const int pq = pq_tq >> 4;
        const int tq = pq_tq & 0x0F;
        if (pq != 0)
            return st.fail("16-bit quant tables unsupported");
        if (!st.need(64))
            return st.fail("truncated DQT table");
        std::array<std::uint16_t, 64> table;
        for (int k = 0; k < 64; ++k)
            table[kZigZag[k]] = static_cast<std::uint16_t>(st.u8());
        st.quant[tq] = table;
    }
    return true;
}

bool
parseDht(DecoderState &st, std::size_t seg_end)
{
    while (st.pos < seg_end) {
        if (!st.need(17))
            return st.fail("truncated DHT");
        const int tc_th = st.u8();
        const int tc = tc_th >> 4;
        const int th = tc_th & 0x0F;
        HuffmanSpec spec;
        int total = 0;
        for (int i = 0; i < 16; ++i) {
            spec.bits[i] = static_cast<std::uint8_t>(st.u8());
            total += spec.bits[i];
        }
        if (!st.need(static_cast<std::size_t>(total)))
            return st.fail("truncated DHT values");
        spec.values.resize(total);
        for (int i = 0; i < total; ++i)
            spec.values[i] = static_cast<std::uint8_t>(st.u8());
        auto decoder = std::make_unique<HuffmanDecoder>(spec);
        if (tc == 0)
            st.dcTables[th] = std::move(decoder);
        else
            st.acTables[th] = std::move(decoder);
    }
    return true;
}

bool
parseSof0(DecoderState &st, std::size_t seg_end)
{
    if (!st.need(6))
        return st.fail("truncated SOF0");
    const int precision = st.u8();
    if (precision != 8)
        return st.fail("only 8-bit precision supported");
    st.height = st.u16();
    st.width = st.u16();
    const int nc = st.u8();
    if (st.width <= 0 || st.height <= 0)
        return st.fail("bad frame dimensions");
    if (static_cast<std::uint64_t>(st.width) *
            static_cast<std::uint64_t>(st.height) > kMaxPixels)
        return st.fail("frame dimensions exceed decoder limit");
    if (!st.comps.empty())
        return st.fail("multiple SOF0 frames");
    if (nc != 1 && nc != 3)
        return st.fail("only 1 or 3 components supported");
    for (int i = 0; i < nc; ++i) {
        if (!st.need(3))
            return st.fail("truncated SOF0 component");
        ComponentState c;
        c.id = st.u8();
        const int hv = st.u8();
        c.h = hv >> 4;
        c.v = hv & 0x0F;
        c.quantTable = st.u8();
        if (c.h < 1 || c.h > 2 || c.v < 1 || c.v > 2)
            return st.fail("sampling factors beyond 2 unsupported");
        st.comps.push_back(c);
    }
    (void)seg_end;
    return true;
}

bool
decodeScan(DecoderState &st)
{
    // SOS header.
    if (!st.need(1))
        return st.fail("truncated SOS");
    const int ns = st.u8();
    if (ns != static_cast<int>(st.comps.size()))
        return st.fail("scan component count mismatch (progressive?)");
    for (int i = 0; i < ns; ++i) {
        if (!st.need(2))
            return st.fail("truncated SOS component");
        const int id = st.u8();
        const int tables = st.u8();
        bool found = false;
        for (auto &c : st.comps) {
            if (c.id == id) {
                c.dcTable = tables >> 4;
                c.acTable = tables & 0x0F;
                found = true;
            }
        }
        if (!found)
            return st.fail("scan references unknown component");
    }
    if (!st.need(3))
        return st.fail("truncated SOS trailer");
    st.pos += 3; // Ss, Se, AhAl — fixed for baseline

    int hmax = 1, vmax = 1;
    for (const auto &c : st.comps) {
        hmax = std::max(hmax, c.h);
        vmax = std::max(vmax, c.v);
    }
    const int mcus_x = divCeil(st.width, 8 * hmax);
    const int mcus_y = divCeil(st.height, 8 * vmax);

    for (auto &c : st.comps) {
        c.planeW = mcus_x * c.h * 8;
        c.planeH = mcus_y * c.v * 8;
        c.plane.assign(static_cast<std::size_t>(c.planeW) * c.planeH,
                       0.0f);
        if (!st.quant.count(c.quantTable))
            return st.fail("missing quant table");
        if (!st.dcTables.count(c.dcTable) || !st.acTables.count(c.acTable))
            return st.fail("missing huffman table");
    }

    auto reader = std::make_unique<BitReader>(st.data + st.pos,
                                              st.size - st.pos);
    std::size_t scan_base = st.pos;
    int mcus_since_restart = 0;

    for (int my = 0; my < mcus_y; ++my) {
        for (int mx = 0; mx < mcus_x; ++mx) {
            if (st.restartInterval > 0 &&
                mcus_since_restart == st.restartInterval) {
                // Align to the RSTn marker and resync.
                std::size_t p = scan_base + reader->position();
                while (p + 1 < st.size &&
                       !(st.data[p] == 0xFF && st.data[p + 1] >= RST0 &&
                         st.data[p + 1] <= RST7))
                    ++p;
                if (p + 1 >= st.size)
                    return st.fail("missing restart marker");
                p += 2;
                reader = std::make_unique<BitReader>(st.data + p,
                                                     st.size - p);
                scan_base = p;
                for (auto &c : st.comps)
                    c.pred = 0;
                mcus_since_restart = 0;
            }
            for (auto &c : st.comps) {
                const auto &quant = st.quant[c.quantTable];
                const HuffmanDecoder &dc = *st.dcTables[c.dcTable];
                const HuffmanDecoder &ac = *st.acTables[c.acTable];
                for (int by = 0; by < c.v; ++by) {
                    for (int bx = 0; bx < c.h; ++bx) {
                        // --- Huffman-decode one block ---
                        float coeff[64] = {0};
                        const int dc_cat = dc.decode(*reader);
                        if (dc_cat < 0 || dc_cat > 11)
                            return st.fail("bad DC code");
                        const int dc_bits = reader->get(dc_cat);
                        if (dc_cat > 0 && dc_bits < 0)
                            return st.fail("truncated DC bits");
                        c.pred += extend(dc_bits, dc_cat);
                        coeff[0] = static_cast<float>(c.pred * quant[0]);
                        int k = 1;
                        while (k < 64) {
                            const int rs = ac.decode(*reader);
                            if (rs < 0)
                                return st.fail("bad AC code");
                            const int run = rs >> 4;
                            const int cat = rs & 0x0F;
                            if (cat == 0) {
                                if (run == 15) {
                                    k += 16; // ZRL
                                    continue;
                                }
                                break; // EOB
                            }
                            k += run;
                            if (k >= 64)
                                return st.fail("AC index overflow");
                            const int bits = reader->get(cat);
                            if (bits < 0)
                                return st.fail("truncated AC bits");
                            const int nat = kZigZag[k];
                            coeff[nat] = static_cast<float>(
                                extend(bits, cat) * quant[nat]);
                            ++k;
                        }
                        // --- IDCT and store ---
                        float pixels[64];
                        inverseDct8x8(coeff, pixels);
                        const int ox = (mx * c.h + bx) * 8;
                        const int oy = (my * c.v + by) * 8;
                        for (int y = 0; y < 8; ++y) {
                            for (int x = 0; x < 8; ++x) {
                                c.plane[static_cast<std::size_t>(oy + y) *
                                            c.planeW +
                                        ox + x] =
                                    pixels[y * 8 + x] + 128.0f;
                            }
                        }
                    }
                }
            }
            ++mcus_since_restart;
        }
    }
    st.pos = scan_base + reader->position();
    return true;
}

Image
assembleImage(DecoderState &st)
{
    const int nc = static_cast<int>(st.comps.size());
    Image img(st.width, st.height, nc);
    int hmax = 1, vmax = 1;
    for (const auto &c : st.comps) {
        hmax = std::max(hmax, c.h);
        vmax = std::max(vmax, c.v);
    }
    if (nc == 1) {
        const auto &c = st.comps[0];
        for (int y = 0; y < st.height; ++y)
            for (int x = 0; x < st.width; ++x)
                img.at(x, y, 0) = static_cast<std::uint8_t>(clamp(
                    static_cast<int>(std::lround(
                        c.plane[static_cast<std::size_t>(y) * c.planeW +
                                x])),
                    0, 255));
        return img;
    }
    // YCbCr -> RGB with (nearest) upsampling. Every component is
    // indexed through its own sampling factors: planes only cover
    // width * h / hmax samples, so a luma plane subsampled relative to
    // chroma (legal per the syntax) must not be read at full resolution.
    const auto &cy = st.comps[0];
    const auto &cb = st.comps[1];
    const auto &cr = st.comps[2];
    for (int y = 0; y < st.height; ++y) {
        for (int x = 0; x < st.width; ++x) {
            const int yx = x * cy.h / hmax;
            const int yy = y * cy.v / vmax;
            const float Y =
                cy.plane[static_cast<std::size_t>(yy) * cy.planeW + yx];
            const int bx = x * cb.h / hmax;
            const int by = y * cb.v / vmax;
            const float Cb =
                cb.plane[static_cast<std::size_t>(by) * cb.planeW + bx] -
                128.0f;
            const float Cr =
                cr.plane[static_cast<std::size_t>(by) * cr.planeW + bx] -
                128.0f;
            auto to8 = [](float v) {
                return static_cast<std::uint8_t>(
                    clamp(static_cast<int>(std::lround(v)), 0, 255));
            };
            img.at(x, y, 0) = to8(Y + 1.402f * Cr);
            img.at(x, y, 1) = to8(Y - 0.344136f * Cb - 0.714136f * Cr);
            img.at(x, y, 2) = to8(Y + 1.772f * Cb);
        }
    }
    return img;
}

} // namespace

DecodeResult
decodeJpeg(const std::uint8_t *data, std::size_t size)
{
    DecodeResult res;
    DecoderState st(data, size);

    if (size < 4 || data[0] != 0xFF || data[1] != SOI) {
        res.error = "not a JPEG (missing SOI)";
        return res;
    }
    st.pos = 2;

    bool have_frame = false;
    bool scan_done = false;
    while (st.pos + 1 < st.size && !scan_done) {
        if (st.data[st.pos] != 0xFF) {
            res.error = "expected marker";
            return res;
        }
        const int marker = st.data[st.pos + 1];
        st.pos += 2;
        if (marker == EOI)
            break;
        if (marker == SOI || (marker >= RST0 && marker <= RST7))
            continue; // parameterless markers
        if (!st.need(2)) {
            res.error = "truncated segment length";
            return res;
        }
        const int seg_len = st.u16();
        if (seg_len < 2) {
            // The length field counts itself; anything smaller would
            // rewind the cursor and re-parse bytes already consumed.
            res.error = "segment length below 2";
            return res;
        }
        const std::size_t seg_end = st.pos + seg_len - 2;
        if (seg_end > st.size) {
            res.error = "segment overruns file";
            return res;
        }
        bool ok = true;
        switch (marker) {
          case DQT:
            ok = parseDqt(st, seg_end);
            break;
          case DHT:
            ok = parseDht(st, seg_end);
            break;
          case SOF0:
            ok = parseSof0(st, seg_end);
            have_frame = true;
            break;
          case DRI:
            if (seg_end - st.pos < 2 || !st.need(2)) {
                res.error = "truncated DRI";
                return res;
            }
            st.restartInterval = st.u16();
            break;
          case SOS:
            if (!have_frame) {
                res.error = "SOS before SOF0";
                return res;
            }
            ok = decodeScan(st);
            scan_done = true;
            break;
          default:
            if (marker >= 0xC1 && marker <= 0xCF && marker != DHT) {
                res.error = "non-baseline frame type unsupported";
                return res;
            }
            st.pos = seg_end; // skip APPn/COM/...
            break;
        }
        if (!ok) {
            res.error = st.error.empty() ? "decode error" : st.error;
            return res;
        }
        if (marker != SOS)
            st.pos = seg_end;
    }

    if (!scan_done) {
        res.error = "no scan data";
        return res;
    }
    res.image = assembleImage(st);
    res.ok = true;
    return res;
}

DecodeResult
decodeJpeg(const std::vector<std::uint8_t> &data)
{
    return decodeJpeg(data.data(), data.size());
}

} // namespace jpeg
} // namespace tb
