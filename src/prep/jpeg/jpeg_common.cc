#include "prep/jpeg/jpeg_common.hh"

#include "common/math_util.hh"

namespace tb {
namespace jpeg {

const std::array<int, 64> kZigZag = {
     0,  1,  8, 16,  9,  2,  3, 10,
    17, 24, 32, 25, 18, 11,  4,  5,
    12, 19, 26, 33, 40, 48, 41, 34,
    27, 20, 13,  6,  7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36,
    29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46,
    53, 60, 61, 54, 47, 55, 62, 63,
};

const std::array<int, 64> kLumaQuant = {
    16, 11, 10, 16,  24,  40,  51,  61,
    12, 12, 14, 19,  26,  58,  60,  55,
    14, 13, 16, 24,  40,  57,  69,  56,
    14, 17, 22, 29,  51,  87,  80,  62,
    18, 22, 37, 56,  68, 109, 103,  77,
    24, 35, 55, 64,  81, 104, 113,  92,
    49, 64, 78, 87, 103, 121, 120, 101,
    72, 92, 95, 98, 112, 100, 103,  99,
};

const std::array<int, 64> kChromaQuant = {
    17, 18, 24, 47, 99, 99, 99, 99,
    18, 21, 26, 66, 99, 99, 99, 99,
    24, 26, 56, 99, 99, 99, 99, 99,
    47, 66, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99,
};

std::array<std::uint16_t, 64>
scaleQuantTable(const std::array<int, 64> &base, int quality)
{
    quality = clamp(quality, 1, 100);
    const int scale =
        quality < 50 ? 5000 / quality : 200 - quality * 2;
    std::array<std::uint16_t, 64> out;
    for (int i = 0; i < 64; ++i) {
        const int q = (base[i] * scale + 50) / 100;
        out[i] = static_cast<std::uint16_t>(clamp(q, 1, 255));
    }
    return out;
}

} // namespace jpeg
} // namespace tb
