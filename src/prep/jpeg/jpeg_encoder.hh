/**
 * @file
 * Baseline sequential-DCT JPEG encoder (JFIF, 4:2:0 for RGB inputs,
 * single-component for grayscale, standard Annex K tables, optional
 * restart intervals). Used to synthesize the "stored ImageNet" items the
 * functional pipeline decodes.
 */

#ifndef TRAINBOX_PREP_JPEG_JPEG_ENCODER_HH
#define TRAINBOX_PREP_JPEG_JPEG_ENCODER_HH

#include <cstdint>
#include <vector>

#include "prep/image/image.hh"

namespace tb {
namespace jpeg {

/** Encoder knobs. */
struct EncoderOptions
{
    /** Quality 1..100 (libjpeg quantizer scaling). */
    int quality = 85;

    /** Restart interval in MCUs (0 = none). */
    int restartInterval = 0;
};

/**
 * Encode an RGB (3-channel) or grayscale (1-channel) image as baseline
 * JPEG. fatal()s on unsupported channel counts.
 */
std::vector<std::uint8_t> encodeJpeg(const Image &img,
                                     const EncoderOptions &opts = {});

} // namespace jpeg
} // namespace tb

#endif // TRAINBOX_PREP_JPEG_JPEG_ENCODER_HH
