#include "prep/jpeg/dct.hh"

#include <cmath>

namespace tb {
namespace jpeg {

namespace {

/** Cosine basis c[u][x] = cos((2x+1) u pi / 16), with DCT scale factors. */
struct Basis
{
    float cosTab[8][8];
    float alpha[8];

    Basis()
    {
        for (int u = 0; u < 8; ++u) {
            alpha[u] = u == 0 ? std::sqrt(1.0f / 8.0f)
                              : std::sqrt(2.0f / 8.0f);
            for (int x = 0; x < 8; ++x)
                cosTab[u][x] = std::cos((2.0f * x + 1.0f) * u *
                                        static_cast<float>(M_PI) / 16.0f);
        }
    }
};

const Basis &
basis()
{
    static const Basis b;
    return b;
}

} // namespace

void
forwardDct8x8(const float in[64], float out[64])
{
    const Basis &b = basis();
    float tmp[64];
    // Rows.
    for (int y = 0; y < 8; ++y) {
        for (int u = 0; u < 8; ++u) {
            float acc = 0.0f;
            for (int x = 0; x < 8; ++x)
                acc += in[y * 8 + x] * b.cosTab[u][x];
            tmp[y * 8 + u] = acc * b.alpha[u];
        }
    }
    // Columns.
    for (int u = 0; u < 8; ++u) {
        for (int v = 0; v < 8; ++v) {
            float acc = 0.0f;
            for (int y = 0; y < 8; ++y)
                acc += tmp[y * 8 + u] * b.cosTab[v][y];
            out[v * 8 + u] = acc * b.alpha[v];
        }
    }
}

void
inverseDct8x8(const float in[64], float out[64])
{
    const Basis &b = basis();
    float tmp[64];
    // Columns.
    for (int u = 0; u < 8; ++u) {
        for (int y = 0; y < 8; ++y) {
            float acc = 0.0f;
            for (int v = 0; v < 8; ++v)
                acc += b.alpha[v] * in[v * 8 + u] * b.cosTab[v][y];
            tmp[y * 8 + u] = acc;
        }
    }
    // Rows.
    for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
            float acc = 0.0f;
            for (int u = 0; u < 8; ++u)
                acc += b.alpha[u] * tmp[y * 8 + u] * b.cosTab[u][x];
            out[y * 8 + x] = acc;
        }
    }
}

} // namespace jpeg
} // namespace tb
