/**
 * @file
 * JPEG Huffman coding: canonical code construction from (BITS, HUFFVAL)
 * specs, the Annex K standard tables, an encoder, and a decoder using the
 * MINCODE/MAXCODE/VALPTR scheme of ITU-T T.81 §F.2.2.3. This is exactly
 * the sequential, data-dependent phase the paper cites as the reason GPUs
 * handle JPEG formatting poorly (§V-B).
 */

#ifndef TRAINBOX_PREP_JPEG_HUFFMAN_HH
#define TRAINBOX_PREP_JPEG_HUFFMAN_HH

#include <array>
#include <cstdint>
#include <vector>

#include "prep/jpeg/bit_io.hh"

namespace tb {
namespace jpeg {

/** A Huffman table spec as stored in a DHT segment. */
struct HuffmanSpec
{
    /** bits[i] = number of codes of length i+1 (i in 0..15). */
    std::array<std::uint8_t, 16> bits{};

    /** Symbols in code order. */
    std::vector<std::uint8_t> values;
};

/** Annex K standard tables. */
const HuffmanSpec &stdDcLuma();
const HuffmanSpec &stdAcLuma();
const HuffmanSpec &stdDcChroma();
const HuffmanSpec &stdAcChroma();

/** Symbol -> canonical code lookup for encoding. */
class HuffmanEncoder
{
  public:
    explicit HuffmanEncoder(const HuffmanSpec &spec);

    /** Emit the code for @p symbol. */
    void encode(BitWriter &bw, std::uint8_t symbol) const;

    /** Code length of a symbol (0 when absent). */
    int codeLength(std::uint8_t symbol) const
    {
        return length_[symbol];
    }

  private:
    std::array<std::uint16_t, 256> code_{};
    std::array<std::uint8_t, 256> length_{};
};

/** Canonical decoder (bit-serial, MINCODE/MAXCODE/VALPTR). */
class HuffmanDecoder
{
  public:
    explicit HuffmanDecoder(const HuffmanSpec &spec);

    /** Decode one symbol; -1 on malformed input or end of data. */
    int decode(BitReader &br) const;

  private:
    std::array<std::int32_t, 17> minCode_{};
    std::array<std::int32_t, 17> maxCode_{};
    std::array<std::int32_t, 17> valPtr_{};
    std::vector<std::uint8_t> values_;
};

} // namespace jpeg
} // namespace tb

#endif // TRAINBOX_PREP_JPEG_HUFFMAN_HH
