#include "prep/jpeg/jpeg_encoder.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/math_util.hh"
#include "prep/jpeg/dct.hh"
#include "prep/jpeg/huffman.hh"
#include "prep/jpeg/jpeg_common.hh"

namespace tb {
namespace jpeg {

namespace {

/** Magnitude category (SSSS): bits needed to represent |v|. */
int
category(int v)
{
    int a = v < 0 ? -v : v;
    int n = 0;
    while (a) {
        ++n;
        a >>= 1;
    }
    return n;
}

/** Low-bits encoding of a value in its category (T.81 F.1.2.1). */
std::uint32_t
magnitudeBits(int v, int cat)
{
    return static_cast<std::uint32_t>(v < 0 ? v + (1 << cat) - 1 : v);
}

void
put16(std::vector<std::uint8_t> &out, int v)
{
    out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
    out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

void
putMarker(std::vector<std::uint8_t> &out, std::uint8_t marker)
{
    out.push_back(0xFF);
    out.push_back(marker);
}

/** One color component being encoded. */
struct Component
{
    int id;
    int h, v;          // sampling factors
    int quantTable;    // 0 = luma, 1 = chroma
    int dcTable, acTable;
    std::vector<float> plane; // subsampled plane, planeW x planeH
    int planeW = 0, planeH = 0;
    int pred = 0;      // DC predictor
};

/** Encode one quantized 8x8 block (zig-zag order). */
void
encodeBlock(BitWriter &bw, const int zz[64], int &pred,
            const HuffmanEncoder &dc, const HuffmanEncoder &ac)
{
    const int diff = zz[0] - pred;
    pred = zz[0];
    const int cat = category(diff);
    dc.encode(bw, static_cast<std::uint8_t>(cat));
    if (cat > 0)
        bw.put(magnitudeBits(diff, cat), cat);

    int run = 0;
    for (int k = 1; k < 64; ++k) {
        if (zz[k] == 0) {
            ++run;
            continue;
        }
        while (run > 15) {
            ac.encode(bw, 0xF0); // ZRL
            run -= 16;
        }
        const int c = category(zz[k]);
        ac.encode(bw, static_cast<std::uint8_t>((run << 4) | c));
        bw.put(magnitudeBits(zz[k], c), c);
        run = 0;
    }
    if (run > 0)
        ac.encode(bw, 0x00); // EOB
}

/** Fetch an 8x8 block from a plane with edge replication, then quantize. */
void
blockFromPlane(const Component &comp, int bx, int by,
               const std::array<std::uint16_t, 64> &quant, int zz[64])
{
    float block[64];
    for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
            const int sx = clamp(bx * 8 + x, 0, comp.planeW - 1);
            const int sy = clamp(by * 8 + y, 0, comp.planeH - 1);
            block[y * 8 + x] =
                comp.plane[static_cast<std::size_t>(sy) * comp.planeW +
                           sx] -
                128.0f;
        }
    }
    float coeff[64];
    forwardDct8x8(block, coeff);
    for (int k = 0; k < 64; ++k) {
        const int nat = kZigZag[k];
        zz[k] = static_cast<int>(
            std::lround(coeff[nat] / static_cast<float>(quant[nat])));
    }
}

} // namespace

std::vector<std::uint8_t>
encodeJpeg(const Image &img, const EncoderOptions &opts)
{
    fatal_if(img.channels != 3 && img.channels != 1,
             "JPEG encoder supports 1 or 3 channels, got %d",
             img.channels);
    fatal_if(img.width <= 0 || img.height <= 0, "empty image");

    const bool color = img.channels == 3;
    const auto luma_q = scaleQuantTable(kLumaQuant, opts.quality);
    const auto chroma_q = scaleQuantTable(kChromaQuant, opts.quality);

    // Color transform + chroma subsampling (4:2:0).
    std::vector<Component> comps;
    {
        Component y{1, color ? 2 : 1, color ? 2 : 1, 0, 0, 0, {}, 0, 0, 0};
        y.planeW = img.width;
        y.planeH = img.height;
        y.plane.resize(static_cast<std::size_t>(y.planeW) * y.planeH);
        comps.push_back(std::move(y));
        if (color) {
            for (int id : {2, 3}) {
                Component c{id, 1, 1, 1, 1, 1, {}, 0, 0, 0};
                c.planeW = (img.width + 1) / 2;
                c.planeH = (img.height + 1) / 2;
                c.plane.resize(static_cast<std::size_t>(c.planeW) *
                               c.planeH);
                comps.push_back(std::move(c));
            }
        }
    }
    if (color) {
        std::vector<float> cb(static_cast<std::size_t>(img.width) *
                              img.height);
        std::vector<float> cr(cb.size());
        for (int y = 0; y < img.height; ++y) {
            for (int x = 0; x < img.width; ++x) {
                const float r = img.at(x, y, 0);
                const float g = img.at(x, y, 1);
                const float b = img.at(x, y, 2);
                const std::size_t i =
                    static_cast<std::size_t>(y) * img.width + x;
                comps[0].plane[i] = 0.299f * r + 0.587f * g + 0.114f * b;
                cb[i] = 128.0f - 0.168736f * r - 0.331264f * g +
                        0.5f * b;
                cr[i] = 128.0f + 0.5f * r - 0.418688f * g -
                        0.081312f * b;
            }
        }
        // 2x2 average subsampling.
        for (int cidx : {1, 2}) {
            Component &c = comps[cidx];
            const std::vector<float> &src = cidx == 1 ? cb : cr;
            for (int y = 0; y < c.planeH; ++y) {
                for (int x = 0; x < c.planeW; ++x) {
                    float acc = 0.0f;
                    int n = 0;
                    for (int dy = 0; dy < 2; ++dy) {
                        for (int dx = 0; dx < 2; ++dx) {
                            const int sx = 2 * x + dx;
                            const int sy = 2 * y + dy;
                            if (sx < img.width && sy < img.height) {
                                acc += src[static_cast<std::size_t>(sy) *
                                               img.width +
                                           sx];
                                ++n;
                            }
                        }
                    }
                    c.plane[static_cast<std::size_t>(y) * c.planeW + x] =
                        acc / static_cast<float>(n);
                }
            }
        }
    } else {
        for (int y = 0; y < img.height; ++y)
            for (int x = 0; x < img.width; ++x)
                comps[0].plane[static_cast<std::size_t>(y) * img.width +
                               x] = img.at(x, y, 0);
    }

    std::vector<std::uint8_t> out;
    putMarker(out, SOI);

    // APP0 / JFIF.
    putMarker(out, APP0);
    put16(out, 16);
    for (char ch : {'J', 'F', 'I', 'F', '\0'})
        out.push_back(static_cast<std::uint8_t>(ch));
    out.push_back(1);
    out.push_back(1); // version 1.1
    out.push_back(0); // aspect-ratio units
    put16(out, 1);
    put16(out, 1);
    out.push_back(0);
    out.push_back(0); // no thumbnail

    // DQT: two tables in one segment (one for grayscale).
    const int num_q = color ? 2 : 1;
    putMarker(out, DQT);
    put16(out, 2 + num_q * 65);
    for (int t = 0; t < num_q; ++t) {
        out.push_back(static_cast<std::uint8_t>(t)); // Pq=0|Tq=t
        const auto &q = t == 0 ? luma_q : chroma_q;
        for (int k = 0; k < 64; ++k)
            out.push_back(static_cast<std::uint8_t>(q[kZigZag[k]]));
    }

    // SOF0.
    putMarker(out, SOF0);
    put16(out, 8 + 3 * static_cast<int>(comps.size()));
    out.push_back(8); // precision
    put16(out, img.height);
    put16(out, img.width);
    out.push_back(static_cast<std::uint8_t>(comps.size()));
    for (const auto &c : comps) {
        out.push_back(static_cast<std::uint8_t>(c.id));
        out.push_back(static_cast<std::uint8_t>((c.h << 4) | c.v));
        out.push_back(static_cast<std::uint8_t>(c.quantTable));
    }

    // DHT: the four standard tables (two for grayscale).
    auto emit_dht = [&](int tc, int th, const HuffmanSpec &spec) {
        putMarker(out, DHT);
        put16(out, 2 + 1 + 16 + static_cast<int>(spec.values.size()));
        out.push_back(static_cast<std::uint8_t>((tc << 4) | th));
        for (int i = 0; i < 16; ++i)
            out.push_back(spec.bits[i]);
        for (auto v : spec.values)
            out.push_back(v);
    };
    emit_dht(0, 0, stdDcLuma());
    emit_dht(1, 0, stdAcLuma());
    if (color) {
        emit_dht(0, 1, stdDcChroma());
        emit_dht(1, 1, stdAcChroma());
    }

    if (opts.restartInterval > 0) {
        putMarker(out, DRI);
        put16(out, 4);
        put16(out, opts.restartInterval);
    }

    // SOS.
    putMarker(out, SOS);
    put16(out, 6 + 2 * static_cast<int>(comps.size()));
    out.push_back(static_cast<std::uint8_t>(comps.size()));
    for (const auto &c : comps) {
        out.push_back(static_cast<std::uint8_t>(c.id));
        out.push_back(
            static_cast<std::uint8_t>((c.dcTable << 4) | c.acTable));
    }
    out.push_back(0);
    out.push_back(63);
    out.push_back(0); // Ss/Se/Ah|Al

    // Entropy-coded scan.
    const HuffmanEncoder dc_luma(stdDcLuma());
    const HuffmanEncoder ac_luma(stdAcLuma());
    const HuffmanEncoder dc_chroma(stdDcChroma());
    const HuffmanEncoder ac_chroma(stdAcChroma());

    const int hmax = comps[0].h;
    const int vmax = comps[0].v;
    const int mcus_x = divCeil(img.width, 8 * hmax);
    const int mcus_y = divCeil(img.height, 8 * vmax);

    BitWriter bw(out);
    int rst_index = 0;
    int mcus_since_restart = 0;
    for (int my = 0; my < mcus_y; ++my) {
        for (int mx = 0; mx < mcus_x; ++mx) {
            if (opts.restartInterval > 0 &&
                mcus_since_restart == opts.restartInterval) {
                bw.flush();
                putMarker(out, static_cast<std::uint8_t>(
                                   RST0 + (rst_index & 7)));
                ++rst_index;
                mcus_since_restart = 0;
                for (auto &c : comps)
                    c.pred = 0;
            }
            for (auto &c : comps) {
                const auto &quant = c.quantTable == 0 ? luma_q : chroma_q;
                const HuffmanEncoder &dc =
                    c.dcTable == 0 ? dc_luma : dc_chroma;
                const HuffmanEncoder &ac =
                    c.acTable == 0 ? ac_luma : ac_chroma;
                for (int by = 0; by < c.v; ++by) {
                    for (int bx = 0; bx < c.h; ++bx) {
                        int zz[64];
                        blockFromPlane(c, mx * c.h + bx, my * c.v + by,
                                       quant, zz);
                        encodeBlock(bw, zz, c.pred, dc, ac);
                    }
                }
            }
            ++mcus_since_restart;
        }
    }
    bw.flush();
    putMarker(out, EOI);
    return out;
}

} // namespace jpeg
} // namespace tb
