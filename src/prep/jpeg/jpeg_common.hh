/**
 * @file
 * Shared JPEG definitions: markers, zig-zag order, quantization tables
 * (ITU-T T.81 Annex K) and quality scaling.
 */

#ifndef TRAINBOX_PREP_JPEG_JPEG_COMMON_HH
#define TRAINBOX_PREP_JPEG_JPEG_COMMON_HH

#include <array>
#include <cstdint>

namespace tb {
namespace jpeg {

/** JPEG marker codes (second byte after 0xFF). */
enum Marker : std::uint8_t
{
    SOI = 0xD8,
    EOI = 0xD9,
    SOF0 = 0xC0,
    DHT = 0xC4,
    DQT = 0xDB,
    DRI = 0xDD,
    SOS = 0xDA,
    APP0 = 0xE0,
    COM = 0xFE,
    RST0 = 0xD0,
    RST7 = 0xD7,
};

/** Zig-zag scan order: natural index of the k-th zig-zag coefficient. */
extern const std::array<int, 64> kZigZag;

/** Annex K luminance quantization table (natural order). */
extern const std::array<int, 64> kLumaQuant;

/** Annex K chrominance quantization table (natural order). */
extern const std::array<int, 64> kChromaQuant;

/**
 * Scale a base quantization table by quality (1..100, libjpeg formula).
 * Values are clamped to [1, 255] (baseline 8-bit precision).
 */
std::array<std::uint16_t, 64> scaleQuantTable(
    const std::array<int, 64> &base, int quality);

} // namespace jpeg
} // namespace tb

#endif // TRAINBOX_PREP_JPEG_JPEG_COMMON_HH
