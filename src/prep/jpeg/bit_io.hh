/**
 * @file
 * Bit-level I/O for the JPEG entropy coder.
 *
 * JPEG writes bits MSB-first and byte-stuffs: every 0xFF data byte is
 * followed by a 0x00 so that scan data never aliases a marker. The reader
 * removes the stuffing and reports when it hits a marker.
 */

#ifndef TRAINBOX_PREP_JPEG_BIT_IO_HH
#define TRAINBOX_PREP_JPEG_BIT_IO_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tb {
namespace jpeg {

/** MSB-first bit writer with 0xFF byte stuffing. */
class BitWriter
{
  public:
    explicit BitWriter(std::vector<std::uint8_t> &out) : out_(out) {}

    /** Append the low @p count bits of @p bits (MSB of the field first). */
    void put(std::uint32_t bits, int count);

    /** Pad the final partial byte with 1-bits (JPEG convention). */
    void flush();

  private:
    void emitByte(std::uint8_t b);

    std::vector<std::uint8_t> &out_;
    std::uint32_t acc_ = 0;
    int bitCount_ = 0;
};

/** MSB-first bit reader that un-stuffs 0xFF 0x00 sequences. */
class BitReader
{
  public:
    BitReader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    /**
     * Read @p count bits (0..25). Returns -1 if the stream is exhausted
     * or a marker is encountered mid-scan.
     */
    std::int32_t get(int count);

    /** Read a single bit (-1 on end). */
    std::int32_t getBit() { return get(1); }

    /** Byte offset of the next unread byte. */
    std::size_t position() const { return pos_; }

    /** True once a marker or the end of data was reached. */
    bool atEnd() const { return hitMarker_ && bitCount_ == 0; }

  private:
    bool fill();

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    std::uint32_t acc_ = 0;
    int bitCount_ = 0;
    bool hitMarker_ = false;
};

} // namespace jpeg
} // namespace tb

#endif // TRAINBOX_PREP_JPEG_BIT_IO_HH
