/**
 * @file
 * 8x8 forward and inverse DCT (type II/III) used by the JPEG codec.
 * Straightforward separable float implementation — clarity over speed;
 * the throughput claims of the paper live in the simulator, not here.
 */

#ifndef TRAINBOX_PREP_JPEG_DCT_HH
#define TRAINBOX_PREP_JPEG_DCT_HH

namespace tb {
namespace jpeg {

/** Forward 8x8 DCT: spatial block (row-major) -> coefficients. */
void forwardDct8x8(const float in[64], float out[64]);

/** Inverse 8x8 DCT: coefficients -> spatial block. */
void inverseDct8x8(const float in[64], float out[64]);

} // namespace jpeg
} // namespace tb

#endif // TRAINBOX_PREP_JPEG_DCT_HH
