#include "prep/pipeline.hh"

#include <array>
#include <cmath>

#include "common/math_util.hh"
#include "prep/image/image_ops.hh"
#include "prep/jpeg/jpeg_decoder.hh"
#include "prep/jpeg/jpeg_encoder.hh"

namespace tb {
namespace prep {

PreparedImage
ImagePrepPipeline::prepare(const std::vector<std::uint8_t> &jpeg_bytes,
                           Rng &rng) const
{
    PreparedImage out;

    jpeg::DecodeResult decoded = jpeg::decodeJpeg(jpeg_bytes);
    if (!decoded.ok) {
        out.error = "decode: " + decoded.error;
        return out;
    }
    if (decoded.image.width < cfg_.cropWidth ||
        decoded.image.height < cfg_.cropHeight) {
        out.error = "image smaller than crop";
        return out;
    }

    Image img = cfg_.augment
        ? imageops::randomCrop(decoded.image, cfg_.cropWidth,
                               cfg_.cropHeight, rng)
        : imageops::centerCrop(decoded.image, cfg_.cropWidth,
                               cfg_.cropHeight);
    if (cfg_.augment) {
        if (rng.uniform() < cfg_.mirrorProbability)
            img = imageops::mirrorHorizontal(img);
        if (cfg_.noiseStddev > 0.0)
            img = imageops::addGaussianNoise(img, cfg_.noiseStddev, rng);
    }

    out.tensor = imageops::castToFloatTensor(img);
    out.width = img.width;
    out.height = img.height;
    out.channels = img.channels;
    out.ok = true;
    return out;
}

Image
makeSyntheticImage(int width, int height, Rng &rng)
{
    Image img(width, height, 3);

    // Low-frequency sinusoidal "scene" per channel plus a few blobs.
    struct Wave
    {
        double fx, fy, phase, amp;
    };
    std::array<std::array<Wave, 3>, 3> waves;
    for (auto &chan : waves)
        for (auto &w : chan)
            w = {rng.uniform(0.5, 3.0), rng.uniform(0.5, 3.0),
                 rng.uniform(0.0, 2.0 * M_PI), rng.uniform(20.0, 55.0)};

    struct Blob
    {
        double cx, cy, r, amp;
        int channel;
    };
    std::vector<Blob> blobs;
    for (int i = 0; i < 6; ++i)
        blobs.push_back({rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0),
                         rng.uniform(0.05, 0.25), rng.uniform(-60.0, 60.0),
                         static_cast<int>(rng.uniformInt(0, 2))});

    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            const double u = static_cast<double>(x) / width;
            const double v = static_cast<double>(y) / height;
            for (int c = 0; c < 3; ++c) {
                double val = 110.0 + 40.0 * u + 20.0 * v;
                for (const auto &w : waves[c])
                    val += w.amp *
                           std::sin(2.0 * M_PI * (w.fx * u + w.fy * v) +
                                    w.phase);
                for (const auto &b : blobs) {
                    if (b.channel != c)
                        continue;
                    const double d2 = (u - b.cx) * (u - b.cx) +
                                      (v - b.cy) * (v - b.cy);
                    val += b.amp * std::exp(-d2 / (b.r * b.r));
                }
                img.at(x, y, c) = static_cast<std::uint8_t>(
                    clamp(static_cast<int>(std::lround(val)), 0, 255));
            }
        }
    }
    return img;
}

std::vector<std::uint8_t>
makeSyntheticJpeg(int width, int height, Rng &rng, int quality)
{
    const Image img = makeSyntheticImage(width, height, rng);
    jpeg::EncoderOptions opts;
    opts.quality = quality;
    return jpeg::encodeJpeg(img, opts);
}

PreparedAudio
AudioPrepPipeline::prepare(std::vector<double> waveform, Rng &rng) const
{
    PreparedAudio out;
    if (cfg_.augment && cfg_.waveformNoiseStddev > 0.0)
        audio::addNoise(waveform, cfg_.waveformNoiseStddev, rng);

    const audio::Spectrogram power = audio::stft(waveform, cfg_.stft);
    if (power.frames == 0)
        return out;
    out.features = audio::logMel(power, cfg_.mel, cfg_.stft.fftSize);
    if (cfg_.augment)
        audio::applyMasks(out.features, cfg_.mask, rng);
    if (cfg_.normalize)
        audio::normalize(out.features);
    out.ok = true;
    return out;
}

} // namespace prep
} // namespace tb
