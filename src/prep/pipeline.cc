#include "prep/pipeline.hh"

#include <array>
#include <cmath>

#include "common/math_util.hh"
#include "prep/image/image_ops.hh"
#include "prep/jpeg/jpeg_decoder.hh"
#include "prep/jpeg/jpeg_encoder.hh"

namespace tb {
namespace prep {

PreparedImage
ImagePrepPipeline::prepare(const std::vector<std::uint8_t> &jpeg_bytes,
                           Rng &rng) const
{
    PreparedImage out;

    jpeg::DecodeResult decoded = jpeg::decodeJpeg(jpeg_bytes);
    if (!decoded.ok) {
        out.error = "decode: " + decoded.error;
        return out;
    }
    if (decoded.image.width < cfg_.cropWidth ||
        decoded.image.height < cfg_.cropHeight) {
        out.error = "image smaller than crop";
        return out;
    }

    Image img = cfg_.augment
        ? imageops::randomCrop(decoded.image, cfg_.cropWidth,
                               cfg_.cropHeight, rng)
        : imageops::centerCrop(decoded.image, cfg_.cropWidth,
                               cfg_.cropHeight);
    if (cfg_.augment) {
        if (rng.uniform() < cfg_.mirrorProbability)
            img = imageops::mirrorHorizontal(img);
        if (cfg_.noiseStddev > 0.0)
            img = imageops::addGaussianNoise(img, cfg_.noiseStddev, rng);
    }

    out.tensor = imageops::castToFloatTensor(img);
    out.width = img.width;
    out.height = img.height;
    out.channels = img.channels;
    out.ok = true;
    return out;
}

Image
makeSyntheticImage(int width, int height, Rng &rng)
{
    Image img(width, height, 3);

    // Low-frequency sinusoidal "scene" per channel plus a few blobs.
    struct Wave
    {
        double fx, fy, phase, amp;
    };
    std::array<std::array<Wave, 3>, 3> waves;
    for (auto &chan : waves)
        for (auto &w : chan)
            w = {rng.uniform(0.5, 3.0), rng.uniform(0.5, 3.0),
                 rng.uniform(0.0, 2.0 * M_PI), rng.uniform(20.0, 55.0)};

    struct Blob
    {
        double cx, cy, r, amp;
        int channel;
    };
    std::vector<Blob> blobs;
    for (int i = 0; i < 6; ++i)
        blobs.push_back({rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0),
                         rng.uniform(0.05, 0.25), rng.uniform(-60.0, 60.0),
                         static_cast<int>(rng.uniformInt(0, 2))});

    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            const double u = static_cast<double>(x) / width;
            const double v = static_cast<double>(y) / height;
            for (int c = 0; c < 3; ++c) {
                double val = 110.0 + 40.0 * u + 20.0 * v;
                for (const auto &w : waves[c])
                    val += w.amp *
                           std::sin(2.0 * M_PI * (w.fx * u + w.fy * v) +
                                    w.phase);
                for (const auto &b : blobs) {
                    if (b.channel != c)
                        continue;
                    const double d2 = (u - b.cx) * (u - b.cx) +
                                      (v - b.cy) * (v - b.cy);
                    val += b.amp * std::exp(-d2 / (b.r * b.r));
                }
                img.at(x, y, c) = static_cast<std::uint8_t>(
                    clamp(static_cast<int>(std::lround(val)), 0, 255));
            }
        }
    }
    return img;
}

std::vector<std::uint8_t>
makeSyntheticJpeg(int width, int height, Rng &rng, int quality)
{
    const Image img = makeSyntheticImage(width, height, rng);
    jpeg::EncoderOptions opts;
    opts.quality = quality;
    return jpeg::encodeJpeg(img, opts);
}

namespace {

/**
 * Screen a waveform and the audio config before running the chain, so
 * malformed input (a corrupted item, an absurd header) quarantines
 * gracefully instead of tripping the kernels' fatal asserts or
 * producing NaN features. Returns an "audio: ..." diagnostic, or ""
 * when the input is fit to process.
 */
std::string
checkAudioInput(const std::vector<double> &waveform,
                const AudioPrepConfig &cfg)
{
    if (waveform.empty())
        return "audio: empty waveform";
    for (double v : waveform) {
        if (!std::isfinite(v))
            return "audio: non-finite waveform sample";
        // Real PCM decodes to [-1, 1] (a few orders of magnitude of
        // headroom allowed); an exponent-bit upset lands far outside and
        // would overflow the power spectrum to Inf downstream.
        if (std::fabs(v) > 1.0e6)
            return "audio: waveform sample out of range";
    }

    const audio::StftConfig &stft = cfg.stft;
    if (stft.windowSize == 0 || stft.hopSize == 0)
        return "audio: zero stft window or hop";
    if (stft.fftSize < stft.windowSize)
        return "audio: fft smaller than window";
    if ((stft.fftSize & (stft.fftSize - 1)) != 0)
        return "audio: fft size not a power of two";
    if (waveform.size() < stft.windowSize)
        return "audio: waveform shorter than one window";

    const audio::MelConfig &mel = cfg.mel;
    if (mel.numMels == 0)
        return "audio: zero mel bands";
    if (!std::isfinite(mel.sampleRate) || mel.sampleRate <= 0.0)
        return "audio: bad sample rate";
    if (mel.fMin < 0.0 || !std::isfinite(mel.fMin))
        return "audio: bad mel fMin";
    if (!std::isfinite(mel.fMax) || mel.fMax <= mel.fMin)
        return "audio: mel fMax at or below fMin";
    if (mel.fMax > mel.sampleRate / 2.0)
        return "audio: mel fMax above Nyquist";
    return "";
}

} // namespace

PreparedAudio
AudioPrepPipeline::prepare(std::vector<double> waveform, Rng &rng) const
{
    PreparedAudio out;
    out.error = checkAudioInput(waveform, cfg_);
    if (!out.error.empty())
        return out;
    if (cfg_.augment && cfg_.waveformNoiseStddev > 0.0)
        audio::addNoise(waveform, cfg_.waveformNoiseStddev, rng);

    const audio::Spectrogram power = audio::stft(waveform, cfg_.stft);
    if (power.frames == 0) {
        out.error = "audio: stft produced no frames";
        return out;
    }
    out.features = audio::logMel(power, cfg_.mel, cfg_.stft.fftSize);
    if (cfg_.augment)
        audio::applyMasks(out.features, cfg_.mask, rng);
    if (cfg_.normalize)
        audio::normalize(out.features);
    out.ok = true;
    return out;
}

} // namespace prep
} // namespace tb
