#include "prep/integrity.hh"

#include <cmath>
#include <cstring>

#include "common/crc32c.hh"
#include "prep/executor/prep_executor.hh"

namespace tb {
namespace prep {

namespace {

/** 'T' 'B' 'I' '1' — TrainBox integrity envelope, version 1. */
constexpr std::uint32_t kEnvelopeMagic = 0x31494254u;

void
putLe32(std::vector<std::uint8_t> &bytes, std::uint32_t v)
{
    bytes.push_back(static_cast<std::uint8_t>(v & 0xFFu));
    bytes.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFFu));
    bytes.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFFu));
    bytes.push_back(static_cast<std::uint8_t>((v >> 24) & 0xFFu));
}

std::uint32_t
getLe32(const std::uint8_t *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
}

bool
fail(std::string *error, const char *what)
{
    if (error)
        *error = std::string("checksum: ") + what;
    return false;
}

} // namespace

void
sealItem(std::vector<std::uint8_t> &bytes)
{
    const std::uint32_t len = static_cast<std::uint32_t>(bytes.size());
    const std::uint32_t crc = crc32c(bytes.data(), bytes.size());
    bytes.reserve(bytes.size() + kEnvelopeBytes);
    putLe32(bytes, kEnvelopeMagic);
    putLe32(bytes, len);
    putLe32(bytes, crc);
}

bool
openItem(std::vector<std::uint8_t> &bytes, std::string *error)
{
    if (bytes.size() < kEnvelopeBytes)
        return fail(error, "item too small for envelope");
    const std::uint8_t *foot = bytes.data() + bytes.size() - kEnvelopeBytes;
    if (getLe32(foot) != kEnvelopeMagic)
        return fail(error, "bad envelope magic");
    const std::size_t payload_len = bytes.size() - kEnvelopeBytes;
    if (getLe32(foot + 4) != payload_len)
        return fail(error, "length mismatch");
    if (getLe32(foot + 8) != crc32c(bytes.data(), payload_len))
        return fail(error, "crc mismatch");
    bytes.resize(payload_len);
    return true;
}

bool
validateImageTensor(const std::vector<float> &tensor, std::string *error)
{
    if (tensor.empty()) {
        if (error)
            *error = "validate: empty image tensor";
        return false;
    }
    for (float v : tensor) {
        if (!std::isfinite(v) || v < 0.0f || v >= 256.0f) {
            if (error)
                *error = "validate: image tensor value out of range";
            return false;
        }
    }
    return true;
}

bool
validateAudioFeatures(const std::vector<double> &features,
                      std::string *error)
{
    if (features.empty()) {
        if (error)
            *error = "validate: empty audio features";
        return false;
    }
    for (double v : features) {
        if (!std::isfinite(v)) {
            if (error)
                *error = "validate: non-finite audio feature";
            return false;
        }
    }
    return true;
}

void
flipRandomBit(std::vector<std::uint8_t> &bytes, Rng &rng)
{
    if (bytes.empty())
        return;
    const auto bit = static_cast<std::uint64_t>(rng.uniformInt(
        0, static_cast<std::int64_t>(bytes.size()) * 8 - 1));
    bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
}

void
flipRandomBit(std::vector<double> &samples, Rng &rng)
{
    if (samples.empty())
        return;
    const auto bit = static_cast<std::uint64_t>(rng.uniformInt(
        0, static_cast<std::int64_t>(samples.size()) * 64 - 1));
    // Flip through an integer view; a mantissa/exponent/sign flip can
    // produce anything from a tiny perturbation to NaN/Inf — exactly
    // the spectrum a real DRAM upset produces.
    std::uint64_t word;
    std::memcpy(&word, &samples[bit / 64], sizeof(word));
    word ^= std::uint64_t{1} << (bit % 64);
    std::memcpy(&samples[bit / 64], &word, sizeof(word));
}

std::string
quarantineReason(const std::string &error)
{
    if (error.rfind("checksum: ", 0) == 0)
        return "checksum_mismatch";
    if (error.rfind("validate: ", 0) == 0)
        return "tensor_invalid";
    if (error.rfind("decode: ", 0) == 0)
        return "decode_error";
    if (error.rfind("audio: ", 0) == 0)
        return "audio_malformed";
    if (error == "image smaller than crop")
        return "bad_dimensions";
    if (error == "executor shut down")
        return "shutdown";
    return "other";
}

std::map<std::string, std::size_t>
quarantineByReason(const std::vector<QuarantinedItem> &items)
{
    std::map<std::string, std::size_t> by;
    for (const auto &item : items)
        ++by[quarantineReason(item.error)];
    return by;
}

} // namespace prep
} // namespace tb
