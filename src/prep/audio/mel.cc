#include "prep/audio/mel.hh"

#include <cmath>

#include "common/logging.hh"

namespace tb {
namespace audio {

double
hzToMel(double hz)
{
    return 2595.0 * std::log10(1.0 + hz / 700.0);
}

double
melToHz(double mel)
{
    return 700.0 * (std::pow(10.0, mel / 2595.0) - 1.0);
}

std::vector<double>
melFilterbank(const MelConfig &mel, std::size_t bins, std::size_t fft_size)
{
    fatal_if(mel.numMels == 0, "need at least one mel band");
    fatal_if(mel.fMax <= mel.fMin, "fMax must exceed fMin");

    // Band edges evenly spaced on the mel scale.
    const double mel_min = hzToMel(mel.fMin);
    const double mel_max = hzToMel(mel.fMax);
    std::vector<double> edges(mel.numMels + 2);
    for (std::size_t i = 0; i < edges.size(); ++i)
        edges[i] = melToHz(mel_min + (mel_max - mel_min) *
                                         static_cast<double>(i) /
                                         static_cast<double>(
                                             mel.numMels + 1));

    std::vector<double> weights(mel.numMels * bins, 0.0);
    for (std::size_t m = 0; m < mel.numMels; ++m) {
        const double lo = edges[m];
        const double mid = edges[m + 1];
        const double hi = edges[m + 2];
        for (std::size_t b = 0; b < bins; ++b) {
            const double freq = static_cast<double>(b) * mel.sampleRate /
                                static_cast<double>(fft_size);
            double w = 0.0;
            if (freq > lo && freq < hi) {
                w = freq <= mid ? (freq - lo) / (mid - lo)
                                : (hi - freq) / (hi - mid);
            }
            weights[m * bins + b] = w;
        }
    }
    return weights;
}

Spectrogram
logMel(const Spectrogram &power, const MelConfig &mel, std::size_t fft_size)
{
    const std::vector<double> fb =
        melFilterbank(mel, power.bins, fft_size);

    Spectrogram out;
    out.frames = power.frames;
    out.bins = mel.numMels;
    out.power.assign(out.frames * out.bins, 0.0);

    constexpr double eps = 1e-10;
    for (std::size_t f = 0; f < power.frames; ++f) {
        for (std::size_t m = 0; m < mel.numMels; ++m) {
            double acc = 0.0;
            for (std::size_t b = 0; b < power.bins; ++b)
                acc += fb[m * power.bins + b] * power.at(f, b);
            out.at(f, m) = std::log(acc + eps);
        }
    }
    return out;
}

} // namespace audio
} // namespace tb
