#include "prep/audio/wave_gen.hh"

#include <cmath>

#include "common/math_util.hh"

namespace tb {
namespace audio {

std::vector<double>
generateUtterance(const WaveGenConfig &cfg, Rng &rng)
{
    const std::size_t n =
        static_cast<std::size_t>(cfg.sampleRate * cfg.durationSec);
    std::vector<double> out(n, 0.0);

    const double pitch = cfg.pitchHz * rng.uniform(0.8, 1.25);
    const double vibrato_rate = rng.uniform(4.0, 7.0);
    const double formant1 = rng.uniform(300.0, 900.0);
    const double formant2 = rng.uniform(1200.0, 2400.0);

    double phase = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double t = static_cast<double>(i) / cfg.sampleRate;
        // Pitch with a little vibrato.
        const double f0 =
            pitch * (1.0 + 0.02 * std::sin(2.0 * M_PI * vibrato_rate * t));
        phase += 2.0 * M_PI * f0 / cfg.sampleRate;

        // Harmonic stack shaped by two formant-like resonances.
        double v = 0.0;
        for (std::size_t h = 1; h <= cfg.numHarmonics; ++h) {
            const double freq = f0 * static_cast<double>(h);
            const double g1 =
                std::exp(-std::pow((freq - formant1) / 250.0, 2.0));
            const double g2 =
                std::exp(-std::pow((freq - formant2) / 400.0, 2.0));
            const double amp =
                (0.4 * g1 + 0.3 * g2 + 0.3 / static_cast<double>(h));
            v += amp * std::sin(phase * static_cast<double>(h));
        }

        // Syllable-rate amplitude envelope (~3 Hz) and breath noise.
        const double envelope =
            0.55 + 0.45 * std::sin(2.0 * M_PI * 3.0 * t +
                                   2.0 * M_PI * rng.uniform() * 0.001);
        v = v * envelope / static_cast<double>(cfg.numHarmonics);
        v += cfg.noiseLevel * rng.gaussian();
        out[i] = clamp(v, -1.0, 1.0);
    }
    return out;
}

} // namespace audio
} // namespace tb
