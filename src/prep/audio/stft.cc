#include "prep/audio/stft.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/math_util.hh"
#include "prep/audio/fft.hh"

namespace tb {
namespace audio {

std::vector<double>
hannWindow(std::size_t n)
{
    std::vector<double> w(n);
    for (std::size_t i = 0; i < n; ++i)
        w[i] = 0.5 - 0.5 * std::cos(2.0 * M_PI * static_cast<double>(i) /
                                    static_cast<double>(n - 1));
    return w;
}

std::size_t
numFrames(std::size_t n, const StftConfig &cfg)
{
    if (n < cfg.windowSize)
        return 0;
    return 1 + (n - cfg.windowSize) / cfg.hopSize;
}

Spectrogram
stft(const std::vector<double> &signal, const StftConfig &cfg)
{
    fatal_if(cfg.fftSize < cfg.windowSize,
             "fftSize %zu smaller than window %zu", cfg.fftSize,
             cfg.windowSize);
    fatal_if(!isPow2(cfg.fftSize), "fftSize must be a power of two");

    Spectrogram spec;
    spec.frames = numFrames(signal.size(), cfg);
    spec.bins = cfg.fftSize / 2 + 1;
    spec.power.assign(spec.frames * spec.bins, 0.0);

    const std::vector<double> window = hannWindow(cfg.windowSize);
    std::vector<Complex> frame(cfg.fftSize);

    for (std::size_t f = 0; f < spec.frames; ++f) {
        const std::size_t off = f * cfg.hopSize;
        for (std::size_t i = 0; i < cfg.fftSize; ++i) {
            const double v = i < cfg.windowSize
                ? signal[off + i] * window[i] : 0.0;
            frame[i] = Complex(v, 0.0);
        }
        fft(frame);
        for (std::size_t b = 0; b < spec.bins; ++b)
            spec.at(f, b) = std::norm(frame[b]);
    }
    return spec;
}

} // namespace audio
} // namespace tb
