#include "prep/audio/audio_ops.hh"

#include <algorithm>
#include <cmath>

namespace tb {
namespace audio {

void
applyMasks(Spectrogram &features, const MaskConfig &cfg, Rng &rng)
{
    if (features.frames == 0 || features.bins == 0)
        return;
    for (std::size_t i = 0; i < cfg.numTimeMasks; ++i) {
        const std::size_t len = static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(std::min(cfg.maxTimeMaskFrames,
                                                  features.frames))));
        if (len == 0)
            continue;
        const std::size_t start = static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(features.frames - len)));
        for (std::size_t f = start; f < start + len; ++f)
            for (std::size_t b = 0; b < features.bins; ++b)
                features.at(f, b) = cfg.fillValue;
    }
    for (std::size_t i = 0; i < cfg.numFreqMasks; ++i) {
        const std::size_t len = static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(
                   std::min(cfg.maxFreqMaskBins, features.bins))));
        if (len == 0)
            continue;
        const std::size_t start = static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(features.bins - len)));
        for (std::size_t f = 0; f < features.frames; ++f)
            for (std::size_t b = start; b < start + len; ++b)
                features.at(f, b) = cfg.fillValue;
    }
}

void
addNoise(std::vector<double> &signal, double stddev, Rng &rng)
{
    for (auto &s : signal)
        s += rng.gaussian(0.0, stddev);
}

std::vector<double>
columnMeans(const Spectrogram &features)
{
    std::vector<double> means(features.bins, 0.0);
    if (features.frames == 0)
        return means;
    for (std::size_t f = 0; f < features.frames; ++f)
        for (std::size_t b = 0; b < features.bins; ++b)
            means[b] += features.at(f, b);
    for (auto &m : means)
        m /= static_cast<double>(features.frames);
    return means;
}

std::vector<double>
columnStddevs(const Spectrogram &features)
{
    std::vector<double> sd(features.bins, 0.0);
    if (features.frames == 0)
        return sd;
    const std::vector<double> means = columnMeans(features);
    for (std::size_t f = 0; f < features.frames; ++f)
        for (std::size_t b = 0; b < features.bins; ++b) {
            const double d = features.at(f, b) - means[b];
            sd[b] += d * d;
        }
    for (auto &s : sd)
        s = std::sqrt(s / static_cast<double>(features.frames));
    return sd;
}

void
normalize(Spectrogram &features)
{
    const std::vector<double> means = columnMeans(features);
    const std::vector<double> sds = columnStddevs(features);
    for (std::size_t f = 0; f < features.frames; ++f)
        for (std::size_t b = 0; b < features.bins; ++b) {
            const double sd = sds[b] > 1e-12 ? sds[b] : 1.0;
            features.at(f, b) = (features.at(f, b) - means[b]) / sd;
        }
}

} // namespace audio
} // namespace tb
