/**
 * @file
 * Short-time Fourier transform -> power spectrogram (the audio formatting
 * stage of Fig 4: "a stream of sound into a Mel spectrogram").
 */

#ifndef TRAINBOX_PREP_AUDIO_STFT_HH
#define TRAINBOX_PREP_AUDIO_STFT_HH

#include <cstddef>
#include <vector>

namespace tb {
namespace audio {

/** STFT framing parameters (defaults: 25 ms window / 10 ms hop @16 kHz). */
struct StftConfig
{
    std::size_t windowSize = 400;
    std::size_t hopSize = 160;
    /** FFT size (>= windowSize, power of two). */
    std::size_t fftSize = 512;
};

/** Row-major matrix: frames x bins. */
struct Spectrogram
{
    std::size_t frames = 0;
    std::size_t bins = 0;
    std::vector<double> power; // frames * bins

    double &
    at(std::size_t f, std::size_t b)
    {
        return power[f * bins + b];
    }

    double
    at(std::size_t f, std::size_t b) const
    {
        return power[f * bins + b];
    }
};

/** Hann window of length n. */
std::vector<double> hannWindow(std::size_t n);

/**
 * Power spectrogram of a mono signal: Hann-windowed frames, zero-padded
 * FFT, |X|^2 over fftSize/2+1 bins.
 */
Spectrogram stft(const std::vector<double> &signal,
                 const StftConfig &cfg = {});

/** Number of frames stft() produces for a signal of length n. */
std::size_t numFrames(std::size_t n, const StftConfig &cfg = {});

} // namespace audio
} // namespace tb

#endif // TRAINBOX_PREP_AUDIO_STFT_HH
