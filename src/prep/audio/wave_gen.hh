/**
 * @file
 * Synthetic speech-like waveform generator. Substitutes for LibriSpeech
 * items (see DESIGN.md): a voiced source (harmonic stack with pitch
 * drift) shaped by slowly wandering formants plus breath noise — enough
 * structure that the Mel pipeline produces non-trivial features.
 */

#ifndef TRAINBOX_PREP_AUDIO_WAVE_GEN_HH
#define TRAINBOX_PREP_AUDIO_WAVE_GEN_HH

#include <cstddef>
#include <vector>

#include "common/random.hh"

namespace tb {
namespace audio {

/** Generator parameters. */
struct WaveGenConfig
{
    double sampleRate = 16000.0;
    double durationSec = 6.96; // LibriSpeech mean
    double pitchHz = 120.0;
    std::size_t numHarmonics = 12;
    double noiseLevel = 0.02;
};

/** Generate one mono utterance in [-1, 1]. */
std::vector<double> generateUtterance(const WaveGenConfig &cfg, Rng &rng);

} // namespace audio
} // namespace tb

#endif // TRAINBOX_PREP_AUDIO_WAVE_GEN_HH
