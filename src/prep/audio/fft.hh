/**
 * @file
 * Iterative radix-2 FFT (power-of-two sizes) and a real-input wrapper.
 * This is the kernel behind the Mel-spectrogram formatting stage — the
 * paper's FPGA engine runs "many small FFTs" (§V-B), and the simulator's
 * audio formatting cost is calibrated against it.
 */

#ifndef TRAINBOX_PREP_AUDIO_FFT_HH
#define TRAINBOX_PREP_AUDIO_FFT_HH

#include <complex>
#include <vector>

namespace tb {
namespace audio {

using Complex = std::complex<double>;

/** In-place radix-2 FFT. Size must be a power of two; fatal() otherwise. */
void fft(std::vector<Complex> &data);

/** In-place inverse FFT (scaled by 1/N). */
void ifft(std::vector<Complex> &data);

/**
 * FFT of a real signal (zero-padded to the next power of two if needed).
 * Returns the full complex spectrum of length nextPow2(n).
 */
std::vector<Complex> rfft(const std::vector<double> &signal);

/** Naive O(N^2) DFT, used as the test oracle. */
std::vector<Complex> dftReference(const std::vector<Complex> &data);

} // namespace audio
} // namespace tb

#endif // TRAINBOX_PREP_AUDIO_FFT_HH
