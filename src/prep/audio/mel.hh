/**
 * @file
 * Mel filterbank and log-Mel feature extraction (the Fig 17 "Mel
 * Spectrogram" / "Mel Filter bank" engines).
 */

#ifndef TRAINBOX_PREP_AUDIO_MEL_HH
#define TRAINBOX_PREP_AUDIO_MEL_HH

#include "prep/audio/stft.hh"

namespace tb {
namespace audio {

/** Mel feature parameters. */
struct MelConfig
{
    std::size_t numMels = 80;
    double sampleRate = 16000.0;
    double fMin = 0.0;
    double fMax = 8000.0;
};

/** HTK mel scale. */
double hzToMel(double hz);
double melToHz(double mel);

/**
 * Triangular mel filterbank: numMels x bins weights (row-major).
 * Bins correspond to an fftSize-point spectrum's first fftSize/2+1 bins.
 */
std::vector<double> melFilterbank(const MelConfig &mel, std::size_t bins,
                                  std::size_t fft_size);

/** frames x numMels log-mel features: log(melE + eps). */
Spectrogram logMel(const Spectrogram &power, const MelConfig &mel,
                   std::size_t fft_size);

} // namespace audio
} // namespace tb

#endif // TRAINBOX_PREP_AUDIO_MEL_HH
