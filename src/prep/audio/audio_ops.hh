/**
 * @file
 * Audio augmentation and normalization operators: SpecAugment-style time
 * and frequency masking on the log-mel features (the Fig 17 "Masking"
 * engine, after [35]), waveform noise injection (the paper's "add some
 * noise into sound" example), and per-feature normalization ("Norm").
 */

#ifndef TRAINBOX_PREP_AUDIO_AUDIO_OPS_HH
#define TRAINBOX_PREP_AUDIO_AUDIO_OPS_HH

#include "common/random.hh"
#include "prep/audio/stft.hh"

namespace tb {
namespace audio {

/** SpecAugment masking parameters. */
struct MaskConfig
{
    std::size_t numTimeMasks = 2;
    std::size_t maxTimeMaskFrames = 40;
    std::size_t numFreqMasks = 2;
    std::size_t maxFreqMaskBins = 15;
    /** Value masked regions are filled with. */
    double fillValue = 0.0;
};

/** Apply SpecAugment time + frequency masks in place. */
void applyMasks(Spectrogram &features, const MaskConfig &cfg, Rng &rng);

/** Add white gaussian noise to a waveform (augmentation). */
void addNoise(std::vector<double> &signal, double stddev, Rng &rng);

/** Mean/variance-normalize each feature column in place (CMVN). */
void normalize(Spectrogram &features);

/** Column means, for testing the normalization. */
std::vector<double> columnMeans(const Spectrogram &features);

/** Column standard deviations. */
std::vector<double> columnStddevs(const Spectrogram &features);

} // namespace audio
} // namespace tb

#endif // TRAINBOX_PREP_AUDIO_AUDIO_OPS_HH
