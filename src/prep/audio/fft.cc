#include "prep/audio/fft.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/math_util.hh"

namespace tb {
namespace audio {

namespace {

void
fftCore(std::vector<Complex> &a, bool inverse)
{
    const std::size_t n = a.size();
    fatal_if(!isPow2(n), "FFT size %zu is not a power of two", n);

    // Bit-reversal permutation.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(a[i], a[j]);
    }

    for (std::size_t len = 2; len <= n; len <<= 1) {
        const double angle =
            2.0 * M_PI / static_cast<double>(len) * (inverse ? 1.0 : -1.0);
        const Complex wlen(std::cos(angle), std::sin(angle));
        for (std::size_t i = 0; i < n; i += len) {
            Complex w(1.0, 0.0);
            for (std::size_t k = 0; k < len / 2; ++k) {
                const Complex u = a[i + k];
                const Complex v = a[i + k + len / 2] * w;
                a[i + k] = u + v;
                a[i + k + len / 2] = u - v;
                w *= wlen;
            }
        }
    }
    if (inverse)
        for (auto &x : a)
            x /= static_cast<double>(n);
}

} // namespace

void
fft(std::vector<Complex> &data)
{
    fftCore(data, false);
}

void
ifft(std::vector<Complex> &data)
{
    fftCore(data, true);
}

std::vector<Complex>
rfft(const std::vector<double> &signal)
{
    const std::size_t n = nextPow2(signal.size());
    std::vector<Complex> data(n, Complex(0.0, 0.0));
    for (std::size_t i = 0; i < signal.size(); ++i)
        data[i] = Complex(signal[i], 0.0);
    fft(data);
    return data;
}

std::vector<Complex>
dftReference(const std::vector<Complex> &data)
{
    const std::size_t n = data.size();
    std::vector<Complex> out(n);
    for (std::size_t k = 0; k < n; ++k) {
        Complex acc(0.0, 0.0);
        for (std::size_t t = 0; t < n; ++t) {
            const double angle = -2.0 * M_PI * static_cast<double>(k) *
                                 static_cast<double>(t) /
                                 static_cast<double>(n);
            acc += data[t] * Complex(std::cos(angle), std::sin(angle));
        }
        out[k] = acc;
    }
    return out;
}

} // namespace audio
} // namespace tb
