/**
 * @file
 * End-to-end data integrity for the functional prep path: CRC32C sample
 * envelopes, cheap tensor sanity validators, corruption (bit-flip)
 * injection helpers, and quarantine-reason classification.
 *
 * The P2P datapath this repo models (SSD -> FPGA -> accelerator) skips
 * the host's ECC-checked, software-validated staging copy, so a flipped
 * bit anywhere along that path silently poisons training — and data
 * echoing replays the poisoned sample for many steps. The defenses
 * modeled in the simulator (server_builder.cc integrity stages) are
 * implemented for real here:
 *
 *   - sealItem()/openItem(): a per-sample CRC32C envelope over the
 *     stored bytes, verified (and stripped) before decode;
 *   - validateImageTensor()/validateAudioFeatures(): NaN/Inf screens
 *     and range checks on prepared tensors, catching upsets that strike
 *     after the envelope was already verified;
 *   - flipRandomBit(): the adversary, used by tests and tb_report's
 *     --prep-smoke to inject storage-level corruption;
 *   - quarantineReason()/quarantineByReason(): fold the executor's
 *     quarantine into per-reason counts for SessionReport.
 *
 * See docs/ROBUSTNESS.md ("Data integrity & silent corruption").
 */

#ifndef TRAINBOX_PREP_INTEGRITY_HH
#define TRAINBOX_PREP_INTEGRITY_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/random.hh"

namespace tb {
namespace prep {

struct QuarantinedItem;

/** Envelope footer size: 4 B magic + 4 B payload length + 4 B CRC32C. */
constexpr std::size_t kEnvelopeBytes = 12;

/**
 * Append the integrity footer to @p bytes in place: little-endian
 * [magic][payload-length][crc32c(payload)]. A sealed item is what the
 * storage layer would hand the prep path.
 */
void sealItem(std::vector<std::uint8_t> &bytes);

/**
 * Verify and strip the envelope of a sealed item in place. Returns true
 * when the footer is present, well-formed, and the CRC matches; on
 * failure @p bytes is left unchanged and, when @p error is non-null, it
 * receives a "checksum: ..." diagnostic.
 */
bool openItem(std::vector<std::uint8_t> &bytes, std::string *error);

/**
 * Cheap sanity screen on a prepared image tensor: every value must be
 * finite and in [0, 256) (the pipeline casts from 8-bit pixels, so
 * anything outside means an upset after decode). Empty tensors fail.
 * On failure returns false and fills @p error with "validate: ...".
 */
bool validateImageTensor(const std::vector<float> &tensor,
                         std::string *error);

/**
 * Sanity screen on prepared audio features: every value finite. (Log-Mel
 * output is unbounded but always finite for finite input.) Empty
 * feature matrices fail. Fills @p error with "validate: ..." on failure.
 */
bool validateAudioFeatures(const std::vector<double> &features,
                           std::string *error);

/** Flip one uniformly-chosen bit of @p bytes (no-op when empty). */
void flipRandomBit(std::vector<std::uint8_t> &bytes, Rng &rng);

/** Flip one uniformly-chosen bit of a raw double buffer (waveforms). */
void flipRandomBit(std::vector<double> &samples, Rng &rng);

/**
 * Classify a quarantined item's error string into a stable reason
 * class: "checksum_mismatch", "tensor_invalid", "decode_error",
 * "audio_malformed", "bad_dimensions", "shutdown", or "other".
 */
std::string quarantineReason(const std::string &error);

/** Per-reason quarantine counts for SessionReport::attachPrepQuarantine. */
std::map<std::string, std::size_t>
quarantineByReason(const std::vector<QuarantinedItem> &items);

} // namespace prep
} // namespace tb

#endif // TRAINBOX_PREP_INTEGRITY_HH
