/**
 * @file
 * End-to-end functional data-preparation pipelines mirroring the
 * simulator's operator chains (Fig 4):
 *
 *   image: JPEG decode -> random crop -> random mirror -> gaussian noise
 *          -> bf16 tensor
 *   audio: waveform (+noise) -> STFT -> log-Mel -> SpecAugment masks
 *          -> normalize
 *
 * plus synthetic item generators standing in for the ImageNet /
 * LibriSpeech items (DESIGN.md substitution table).
 */

#ifndef TRAINBOX_PREP_PIPELINE_HH
#define TRAINBOX_PREP_PIPELINE_HH

#include <string>
#include <vector>

#include "common/random.hh"
#include "prep/audio/audio_ops.hh"
#include "prep/audio/mel.hh"
#include "prep/image/image.hh"

namespace tb {
namespace prep {

/** Image-chain knobs (defaults: the paper's 256x256 -> 224x224 flow). */
struct ImagePrepConfig
{
    int cropWidth = 224;
    int cropHeight = 224;
    double mirrorProbability = 0.5;
    double noiseStddev = 4.0;
    bool augment = true;
};

/** One prepared image sample. */
struct PreparedImage
{
    /** CHW float tensor (values already rounded through bf16). */
    std::vector<float> tensor;
    int width = 0;
    int height = 0;
    int channels = 0;
    bool ok = false;
    std::string error;
};

/** Functional image preparation chain. */
class ImagePrepPipeline
{
  public:
    explicit ImagePrepPipeline(ImagePrepConfig cfg = {}) : cfg_(cfg) {}

    /** Decode + format + augment one stored JPEG item. */
    PreparedImage prepare(const std::vector<std::uint8_t> &jpeg_bytes,
                          Rng &rng) const;

    const ImagePrepConfig &config() const { return cfg_; }

  private:
    ImagePrepConfig cfg_;
};

/** Smooth, compressible synthetic image (stands in for a photo). */
Image makeSyntheticImage(int width, int height, Rng &rng);

/** Synthetic stored item: synthetic image encoded as baseline JPEG. */
std::vector<std::uint8_t> makeSyntheticJpeg(int width, int height,
                                            Rng &rng, int quality = 85);

/** Audio-chain knobs. */
struct AudioPrepConfig
{
    audio::StftConfig stft;
    audio::MelConfig mel;
    audio::MaskConfig mask;
    double waveformNoiseStddev = 0.005;
    bool augment = true;
    bool normalize = true;
};

/** One prepared audio sample. */
struct PreparedAudio
{
    audio::Spectrogram features; // frames x numMels
    bool ok = false;
    std::string error;
};

/** Functional audio preparation chain. */
class AudioPrepPipeline
{
  public:
    explicit AudioPrepPipeline(AudioPrepConfig cfg = {}) : cfg_(cfg) {}

    /** Format + augment one waveform. */
    PreparedAudio prepare(std::vector<double> waveform, Rng &rng) const;

    const AudioPrepConfig &config() const { return cfg_; }

  private:
    AudioPrepConfig cfg_;
};

} // namespace prep
} // namespace tb

#endif // TRAINBOX_PREP_PIPELINE_HH
