#include "prep/executor/calibration.hh"

#include <chrono>
#include <vector>

#include "prep/audio/wave_gen.hh"
#include "prep/executor/prep_executor.hh"

namespace tb {
namespace prep {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

PrepThroughputMeasurement
measurePrepThroughput(const ThroughputMeasureConfig &cfg)
{
    PrepThroughputMeasurement out;

    ExecutorConfig ecfg;
    ecfg.numWorkers = cfg.numWorkers;
    ecfg.baseSeed = cfg.seed;
    // Item generation is kept outside the timed region: it stands in
    // for the SSD read, not for preparation work.
    Rng gen(cfg.seed);

    PrepExecutor executor(ecfg);
    out.numWorkers = executor.numWorkers();

    if (cfg.imageItems > 0) {
        std::vector<std::vector<std::uint8_t>> jpegs;
        jpegs.reserve(cfg.imageItems);
        for (std::size_t i = 0; i < cfg.imageItems; ++i)
            jpegs.push_back(makeSyntheticJpeg(cfg.imageWidth,
                                              cfg.imageHeight, gen));

        const auto t0 = std::chrono::steady_clock::now();
        auto futures = executor.submitImageBatch(std::move(jpegs));
        for (auto &f : futures)
            f.wait();
        const double wall = secondsSince(t0);
        if (wall > 0.0) {
            out.imageSamplesPerSec = cfg.imageItems / wall;
            out.imageCoreSecPerSample =
                out.numWorkers * wall / cfg.imageItems;
        }
    }

    if (cfg.audioItems > 0) {
        audio::WaveGenConfig wcfg;
        std::vector<std::vector<double>> waves;
        waves.reserve(cfg.audioItems);
        for (std::size_t i = 0; i < cfg.audioItems; ++i)
            waves.push_back(audio::generateUtterance(wcfg, gen));

        const auto t0 = std::chrono::steady_clock::now();
        auto futures = executor.submitAudioBatch(std::move(waves));
        for (auto &f : futures)
            f.wait();
        const double wall = secondsSince(t0);
        if (wall > 0.0) {
            out.audioSamplesPerSec = cfg.audioItems / wall;
            out.audioCoreSecPerSample =
                out.numWorkers * wall / cfg.audioItems;
        }
    }
    return out;
}

} // namespace prep
} // namespace tb
