/**
 * @file
 * Live prep-throughput measurement (the measured analogue of the
 * paper's Fig 3 host-CPU prep ceiling).
 *
 * Runs the functional image/audio chains through a PrepExecutor at a
 * chosen worker count and reports samples/s plus the per-sample
 * core-seconds that implies. The result plugs straight into the
 * host-demand model: trainbox/resource_profile.hh accepts a
 * PrepCostCalibration whose fields match this struct's
 * *CoreSecPerSample members, replacing the Table I-derived constants
 * (c_img = 1.572 ms, c_audio = 5.45 ms; DESIGN.md §4) with numbers
 * measured on the machine the simulation runs on.
 */

#ifndef TRAINBOX_PREP_EXECUTOR_CALIBRATION_HH
#define TRAINBOX_PREP_EXECUTOR_CALIBRATION_HH

#include <cstddef>
#include <cstdint>

namespace tb {
namespace prep {

/** What to measure and how hard. */
struct ThroughputMeasureConfig
{
    /** Worker threads (0 = hardware concurrency). */
    std::size_t numWorkers = 1;

    /** Items per chain; 0 skips that chain entirely. */
    std::size_t imageItems = 16;
    std::size_t audioItems = 4;

    /** Stored-item geometry (paper flow: 256x256 JPEG -> 224 crop). */
    int imageWidth = 256;
    int imageHeight = 256;

    std::uint64_t seed = 2026;
};

/** Measured prep throughput at one worker count. */
struct PrepThroughputMeasurement
{
    std::size_t numWorkers = 0;

    /** Batch throughput (samples/s); 0 if the chain was skipped. */
    double imageSamplesPerSec = 0.0;
    double audioSamplesPerSec = 0.0;

    /**
     * Per-sample cost in core-seconds at this worker count
     * (workers * wall / items) — comparable with the cost model's
     * per-sample CPU constants.
     */
    double imageCoreSecPerSample = 0.0;
    double audioCoreSecPerSample = 0.0;
};

/**
 * Generate synthetic stored items, push them through a fresh executor,
 * and time each chain as a batch. Deterministic for a fixed config.
 */
PrepThroughputMeasurement
measurePrepThroughput(const ThroughputMeasureConfig &cfg = {});

} // namespace prep
} // namespace tb

#endif // TRAINBOX_PREP_EXECUTOR_CALIBRATION_HH
