/**
 * @file
 * Bounded multi-producer/multi-consumer blocking work queue.
 *
 * The queue is the hand-off point between batch submitters and the
 * executor's worker threads. It is intentionally small and boring:
 * a mutex-guarded ring with two condition variables. Capacity bounds
 * give natural backpressure — a producer submitting faster than the
 * workers can prepare blocks in push() instead of growing memory
 * without limit (the same role the simulator's bounded staging buffers
 * play in the modeled datapath).
 *
 * Shutdown protocol (see docs/CONCURRENCY.md):
 *   - close() rejects further push() calls but lets consumers drain
 *     what was already queued;
 *   - pop() returns false only when the queue is closed AND empty,
 *     which is each worker's signal to exit.
 */

#ifndef TRAINBOX_PREP_EXECUTOR_WORK_QUEUE_HH
#define TRAINBOX_PREP_EXECUTOR_WORK_QUEUE_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace tb {
namespace prep {

/** Bounded blocking MPMC queue of move-only items. */
template <typename T>
class BoundedWorkQueue
{
  public:
    explicit BoundedWorkQueue(std::size_t capacity)
        : capacity_(capacity ? capacity : 1)
    {}

    BoundedWorkQueue(const BoundedWorkQueue &) = delete;
    BoundedWorkQueue &operator=(const BoundedWorkQueue &) = delete;

    /**
     * Block until there is room, then enqueue. Returns false — leaving
     * @p item untouched so the caller can still dispose of it — if the
     * queue was closed before room appeared.
     */
    bool
    push(T &item)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        notFull_.wait(lock, [&] {
            return closed_ || items_.size() < capacity_;
        });
        if (closed_)
            return false;
        items_.push_back(std::move(item));
        lock.unlock();
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Block until an item is available or the queue is drained-and-
     * closed. Returns false only in the latter case.
     */
    bool
    pop(T &out)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        notEmpty_.wait(lock, [&] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return false; // closed and fully drained
        out = std::move(items_.front());
        items_.pop_front();
        lock.unlock();
        notFull_.notify_one();
        return true;
    }

    /** Reject new work; wake every blocked producer and consumer. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        notFull_.notify_all();
        notEmpty_.notify_all();
    }

    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

    std::size_t capacity() const { return capacity_; }

  private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable notEmpty_;
    std::condition_variable notFull_;
    std::deque<T> items_;
    bool closed_ = false;
};

} // namespace prep
} // namespace tb

#endif // TRAINBOX_PREP_EXECUTOR_WORK_QUEUE_HH
