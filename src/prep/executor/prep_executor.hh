/**
 * @file
 * Parallel data-preparation executor: a fixed-size worker thread pool
 * running the functional prep chains (pipeline.hh) over a bounded MPMC
 * work queue.
 *
 * This is the measurement substrate for the paper's central claim
 * (Figs 3/8): data preparation saturates the host CPU long before the
 * accelerators do. The simulator *models* that ceiling from Table I
 * constants; the executor lets us *measure* it — samples/s as a
 * function of worker count on real kernels — and feed the measured
 * per-sample cost back into the host-demand model
 * (trainbox/resource_profile.hh, via calibration.hh).
 *
 * Determinism: every submitted item gets its own RNG stream derived
 * from (base seed, global item index), so output tensors are
 * bit-identical for any worker count and any scheduling order. See
 * docs/CONCURRENCY.md for why per-item — not per-worker — streams are
 * required for that guarantee.
 *
 * Thread-safety: submit/shutdown/stats methods may be called from any
 * thread. `tb::Rng` itself is NOT thread-safe and is never shared; each
 * task owns its stream.
 */

#ifndef TRAINBOX_PREP_EXECUTOR_PREP_EXECUTOR_HH
#define TRAINBOX_PREP_EXECUTOR_PREP_EXECUTOR_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "prep/executor/work_queue.hh"
#include "prep/pipeline.hh"
#include "sim/stats.hh"

namespace tb {
namespace prep {

/** Executor sizing and determinism knobs. */
struct ExecutorConfig
{
    /** Worker threads (0 = std::thread::hardware_concurrency()). */
    std::size_t numWorkers = 0;

    /** Work-queue bound; producers block when it is full. */
    std::size_t queueCapacity = 256;

    /** Base seed; item i runs with stream derive(baseSeed, i). */
    std::uint64_t baseSeed = 0x9e3779b97f4a7c15ull;

    /**
     * Extra in-task attempts for an item whose chain reports an error
     * (0 = fail immediately, the historical behaviour). Each attempt
     * runs with a fresh stream derived from (base seed, item index,
     * attempt), so retried outputs stay deterministic for any worker
     * count. Items that exhaust every attempt are quarantined —
     * recorded with their error and reported failed, never re-enqueued.
     */
    std::size_t maxItemRetries = 0;

    /**
     * Submitted image items carry the CRC32C envelope of
     * prep/integrity.hh (sealItem). The envelope is verified and
     * stripped before decode; a mismatch quarantines the item
     * immediately — retries are skipped, since re-running a
     * deterministic checksum over the same bytes cannot succeed.
     */
    bool checksummedItems = false;

    /**
     * Screen prepared outputs (finite, in-range) before reporting them
     * ok; failures quarantine like any other chain error. Catches
     * corruption that strikes after the envelope check — in staging
     * buffers or the prep kernels themselves.
     */
    bool validateOutputs = false;

    ImagePrepConfig image;
    AudioPrepConfig audio;
};

/** A poison item: failed its initial attempt and every retry. */
struct QuarantinedItem
{
    /** Global submission index (the same index that picks the seed). */
    std::uint64_t itemIndex = 0;

    /** Error reported by the final attempt. */
    std::string error;
};

/** Consistent copy of the executor's counters (taken under the lock). */
struct ExecutorStatsSnapshot
{
    double itemsPrepared = 0.0;
    double imageItems = 0.0;
    double audioItems = 0.0;
    double itemsFailed = 0.0;

    /** Retry attempts performed / items quarantined as poison. */
    double itemsRetried = 0.0;
    double itemsQuarantined = 0.0;

    /** Stored/compressed bytes in, prepared-tensor bytes out. */
    double bytesIn = 0.0;
    double bytesOut = 0.0;

    /** Per-stage wall time, summed over workers (core-seconds). */
    double imagePrepSeconds = 0.0;
    double audioPrepSeconds = 0.0;
    double queueWaitSeconds = 0.0;
};

/**
 * Fixed-size thread pool executing image/audio preparation chains.
 *
 * Batch submission returns one future per item, in item order; the
 * callback overloads instead invoke `done(index, result)` from a worker
 * thread as each item completes. After shutdown() — or destruction —
 * submissions complete immediately with ok=false.
 */
class PrepExecutor
{
  public:
    explicit PrepExecutor(ExecutorConfig cfg = {});

    /** Drains pending work and joins the workers. */
    ~PrepExecutor();

    PrepExecutor(const PrepExecutor &) = delete;
    PrepExecutor &operator=(const PrepExecutor &) = delete;

    /** Prepare a batch of stored JPEG items; futures in item order. */
    std::vector<std::future<PreparedImage>>
    submitImageBatch(std::vector<std::vector<std::uint8_t>> jpegs);

    /** Callback flavour: done(index, result) runs on a worker thread. */
    void submitImageBatch(
        std::vector<std::vector<std::uint8_t>> jpegs,
        std::function<void(std::size_t, PreparedImage &&)> done);

    /** Prepare a batch of waveforms; futures in item order. */
    std::vector<std::future<PreparedAudio>>
    submitAudioBatch(std::vector<std::vector<double>> waveforms);

    /** Callback flavour: done(index, result) runs on a worker thread. */
    void submitAudioBatch(
        std::vector<std::vector<double>> waveforms,
        std::function<void(std::size_t, PreparedAudio &&)> done);

    /**
     * Graceful shutdown: stop accepting work, let the workers drain the
     * queue, join them. Idempotent; also run by the destructor.
     */
    void shutdown();

    std::size_t numWorkers() const { return workers_.size(); }

    const ExecutorConfig &config() const { return cfg_; }

    /** Consistent copy of all counters. */
    ExecutorStatsSnapshot statsSnapshot() const;

    /**
     * Items that failed their initial attempt and every configured
     * retry, in completion order. Snapshot copy; safe from any thread.
     */
    std::vector<QuarantinedItem> quarantined() const;

    /**
     * Register the counters into a sim/stats.hh group (dump after the
     * workers are quiesced; the group must not outlive the executor).
     */
    void registerStats(stats::StatGroup &group);

  private:
    struct Task
    {
        /** Runs the prep chain and fulfills the promise/callback. */
        std::packaged_task<void()> run;

        /** steady_clock seconds at submission (for queue-wait time). */
        double submitSeconds = 0.0;
    };

    void workerLoop(std::size_t worker_id);
    bool enqueue(Task &task);

    /** Stream for item @p index: same for every worker count. */
    std::uint64_t itemSeed(std::uint64_t index) const;

    ExecutorConfig cfg_;
    BoundedWorkQueue<Task> queue_;
    std::vector<std::thread> workers_;

    std::mutex shutdownMutex_;
    bool shutdown_ = false;

    /** Global item counter; drives per-item RNG stream derivation. */
    std::atomic<std::uint64_t> nextItemIndex_{0};

    /** All counters below are guarded by statsMutex_. */
    mutable std::mutex statsMutex_;
    stats::Scalar itemsPrepared_;
    stats::Scalar imageItems_;
    stats::Scalar audioItems_;
    stats::Scalar itemsFailed_;
    stats::Scalar itemsRetried_;
    stats::Scalar itemsQuarantined_;
    stats::Scalar bytesIn_;
    stats::Scalar bytesOut_;
    stats::Scalar imagePrepSeconds_;
    stats::Scalar audioPrepSeconds_;
    stats::Scalar queueWaitSeconds_;
    stats::Distribution imagePrepMs_;
    stats::Distribution audioPrepMs_;

    /** Poison items, in completion order; guarded by statsMutex_. */
    std::vector<QuarantinedItem> quarantine_;
};

} // namespace prep
} // namespace tb

#endif // TRAINBOX_PREP_EXECUTOR_PREP_EXECUTOR_HH
