#include "prep/executor/prep_executor.hh"

#include <chrono>

#include "prep/integrity.hh"

namespace tb {
namespace prep {

namespace {

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** splitmix64 finalizer: decorrelates consecutive item indices. */
std::uint64_t
mix64(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

PrepExecutor::PrepExecutor(ExecutorConfig cfg)
    : cfg_(cfg), queue_(cfg.queueCapacity)
{
    std::size_t n = cfg_.numWorkers;
    if (n == 0) {
        n = std::thread::hardware_concurrency();
        if (n == 0)
            n = 1;
    }
    cfg_.numWorkers = n;
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

PrepExecutor::~PrepExecutor()
{
    shutdown();
}

std::uint64_t
PrepExecutor::itemSeed(std::uint64_t index) const
{
    // Two rounds of mixing so (base, index) pairs map to unrelated
    // xoshiro initial states even for adjacent indices.
    return mix64(cfg_.baseSeed ^ mix64(index + 0x9e3779b97f4a7c15ull));
}

bool
PrepExecutor::enqueue(Task &task)
{
    {
        std::lock_guard<std::mutex> lock(shutdownMutex_);
        if (shutdown_)
            return false;
    }
    // push() blocks for room (backpressure) and fails only if the
    // queue was closed by a concurrent shutdown(). On failure the task
    // stays valid so the caller can fail or run it inline.
    return queue_.push(task);
}

void
PrepExecutor::workerLoop(std::size_t)
{
    Task task;
    while (queue_.pop(task)) {
        const double waited = nowSeconds() - task.submitSeconds;
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            queueWaitSeconds_ += waited;
        }
        task.run();
    }
}

std::vector<std::future<PreparedImage>>
PrepExecutor::submitImageBatch(std::vector<std::vector<std::uint8_t>> jpegs)
{
    std::vector<std::future<PreparedImage>> futures;
    futures.reserve(jpegs.size());
    for (auto &jpeg_bytes : jpegs) {
        std::promise<PreparedImage> promise;
        futures.push_back(promise.get_future());

        const std::uint64_t index = nextItemIndex_++;
        const std::uint64_t seed = itemSeed(index);
        Task task;
        task.submitSeconds = nowSeconds();
        task.run = std::packaged_task<void()>(
            [this, index, seed, bytes = std::move(jpeg_bytes),
             promise = std::move(promise)]() mutable {
                ImagePrepPipeline pipe(cfg_.image);
                const double t0 = nowSeconds();
                // Bounded in-task retry: attempt a>0 reruns the chain
                // with a fresh stream derived from (seed, a), still a
                // pure function of the item index. The item is never
                // re-enqueued, so a poison item costs at most
                // 1 + maxItemRetries attempts.
                PreparedImage out;
                std::size_t retries = 0;
                // The envelope covers the stored bytes, so one check
                // before the attempt loop suffices; retrying a
                // deterministic mismatch would just burn attempts.
                const bool sealed_ok = !cfg_.checksummedItems ||
                                       openItem(bytes, &out.error);
                for (std::size_t a = 0; sealed_ok; ++a) {
                    Rng rng(a == 0 ? seed : mix64(seed + a));
                    out = pipe.prepare(bytes, rng);
                    if (out.ok && cfg_.validateOutputs &&
                        !validateImageTensor(out.tensor, &out.error))
                        out.ok = false;
                    if (out.ok || a >= cfg_.maxItemRetries)
                        break;
                    ++retries;
                }
                const double dt = nowSeconds() - t0;
                {
                    std::lock_guard<std::mutex> lock(statsMutex_);
                    itemsRetried_ += static_cast<double>(retries);
                    if (out.ok) {
                        ++itemsPrepared_;
                        ++imageItems_;
                        bytesIn_ += static_cast<double>(bytes.size());
                        // Tensor values are bf16-rounded; count 2 B each
                        // (the prepared-item size the datapath carries).
                        bytesOut_ +=
                            static_cast<double>(out.tensor.size() * 2);
                    } else {
                        ++itemsFailed_;
                        ++itemsQuarantined_;
                        quarantine_.push_back({index, out.error});
                    }
                    imagePrepSeconds_ += dt;
                    imagePrepMs_.sample(dt * 1e3);
                }
                promise.set_value(std::move(out));
            });
        if (!enqueue(task)) {
            // Executor already shut down: fail the item immediately.
            PreparedImage failed;
            failed.error = "executor shut down";
            std::promise<PreparedImage> p;
            futures.back() = p.get_future();
            p.set_value(std::move(failed));
        }
    }
    return futures;
}

void
PrepExecutor::submitImageBatch(
    std::vector<std::vector<std::uint8_t>> jpegs,
    std::function<void(std::size_t, PreparedImage &&)> done)
{
    auto futures = submitImageBatch(std::move(jpegs));
    for (std::size_t i = 0; i < futures.size(); ++i) {
        std::promise<PreparedImage> relay;
        std::future<PreparedImage> original = std::move(futures[i]);
        // Chain through one more queued task so the callback runs on a
        // worker thread without blocking the submitter.
        Task task;
        task.submitSeconds = nowSeconds();
        task.run = std::packaged_task<void()>(
            [i, done, original = std::move(original)]() mutable {
                done(i, original.get());
            });
        if (!enqueue(task)) {
            // Shutdown raced the relay: run it inline. The prep future
            // either drains (shutdown is graceful) or was already
            // failed at submission, so get() cannot block forever.
            task.run();
        }
    }
}

std::vector<std::future<PreparedAudio>>
PrepExecutor::submitAudioBatch(std::vector<std::vector<double>> waveforms)
{
    std::vector<std::future<PreparedAudio>> futures;
    futures.reserve(waveforms.size());
    for (auto &wave : waveforms) {
        std::promise<PreparedAudio> promise;
        futures.push_back(promise.get_future());

        const std::uint64_t index = nextItemIndex_++;
        const std::uint64_t seed = itemSeed(index);
        Task task;
        task.submitSeconds = nowSeconds();
        task.run = std::packaged_task<void()>(
            [this, index, seed, wave = std::move(wave),
             promise = std::move(promise)]() mutable {
                AudioPrepPipeline pipe(cfg_.audio);
                const std::size_t pcm_bytes = wave.size() * 2;
                const double t0 = nowSeconds();
                // Same bounded retry policy as the image path; the
                // waveform is kept so later attempts see the input.
                PreparedAudio out;
                std::size_t retries = 0;
                for (std::size_t a = 0;; ++a) {
                    Rng rng(a == 0 ? seed : mix64(seed + a));
                    out = pipe.prepare(wave, rng);
                    if (out.ok && cfg_.validateOutputs &&
                        !validateAudioFeatures(out.features.power,
                                               &out.error))
                        out.ok = false;
                    if (out.ok || a >= cfg_.maxItemRetries)
                        break;
                    ++retries;
                }
                const double dt = nowSeconds() - t0;
                {
                    std::lock_guard<std::mutex> lock(statsMutex_);
                    itemsRetried_ += static_cast<double>(retries);
                    if (out.ok) {
                        ++itemsPrepared_;
                        ++audioItems_;
                        bytesIn_ += static_cast<double>(pcm_bytes);
                        bytesOut_ += static_cast<double>(
                            out.features.frames * out.features.bins * 4);
                    } else {
                        ++itemsFailed_;
                        ++itemsQuarantined_;
                        quarantine_.push_back(
                            {index, out.error.empty()
                                        ? "audio chain failed"
                                        : out.error});
                    }
                    audioPrepSeconds_ += dt;
                    audioPrepMs_.sample(dt * 1e3);
                }
                promise.set_value(std::move(out));
            });
        if (!enqueue(task)) {
            PreparedAudio failed;
            failed.error = "executor shut down";
            std::promise<PreparedAudio> p;
            futures.back() = p.get_future();
            p.set_value(std::move(failed));
        }
    }
    return futures;
}

void
PrepExecutor::submitAudioBatch(
    std::vector<std::vector<double>> waveforms,
    std::function<void(std::size_t, PreparedAudio &&)> done)
{
    auto futures = submitAudioBatch(std::move(waveforms));
    for (std::size_t i = 0; i < futures.size(); ++i) {
        std::future<PreparedAudio> original = std::move(futures[i]);
        Task task;
        task.submitSeconds = nowSeconds();
        task.run = std::packaged_task<void()>(
            [i, done, original = std::move(original)]() mutable {
                done(i, original.get());
            });
        if (!enqueue(task)) {
            task.run();
        }
    }
}

void
PrepExecutor::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(shutdownMutex_);
        if (shutdown_)
            return;
        shutdown_ = true;
    }
    // close() rejects new pushes; workers drain what is queued, then
    // pop() returns false and each loop exits.
    queue_.close();
    for (auto &w : workers_)
        if (w.joinable())
            w.join();
}

ExecutorStatsSnapshot
PrepExecutor::statsSnapshot() const
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    ExecutorStatsSnapshot s;
    s.itemsPrepared = itemsPrepared_.value();
    s.imageItems = imageItems_.value();
    s.audioItems = audioItems_.value();
    s.itemsFailed = itemsFailed_.value();
    s.itemsRetried = itemsRetried_.value();
    s.itemsQuarantined = itemsQuarantined_.value();
    s.bytesIn = bytesIn_.value();
    s.bytesOut = bytesOut_.value();
    s.imagePrepSeconds = imagePrepSeconds_.value();
    s.audioPrepSeconds = audioPrepSeconds_.value();
    s.queueWaitSeconds = queueWaitSeconds_.value();
    return s;
}

std::vector<QuarantinedItem>
PrepExecutor::quarantined() const
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    return quarantine_;
}

void
PrepExecutor::registerStats(stats::StatGroup &group)
{
    group.registerScalar("items_prepared", &itemsPrepared_,
                         "items prepared successfully");
    group.registerScalar("image_items", &imageItems_,
                         "image items prepared");
    group.registerScalar("audio_items", &audioItems_,
                         "audio items prepared");
    group.registerScalar("items_failed", &itemsFailed_,
                         "items whose chain reported an error");
    group.registerScalar("items_retried", &itemsRetried_,
                         "in-task retry attempts performed");
    group.registerScalar("items_quarantined", &itemsQuarantined_,
                         "poison items that exhausted every retry");
    group.registerScalar("bytes_in", &bytesIn_,
                         "stored/compressed bytes consumed");
    group.registerScalar("bytes_out", &bytesOut_,
                         "prepared tensor bytes produced");
    group.registerScalar("image_prep_seconds", &imagePrepSeconds_,
                         "summed image-chain wall time (core-seconds)");
    group.registerScalar("audio_prep_seconds", &audioPrepSeconds_,
                         "summed audio-chain wall time (core-seconds)");
    group.registerScalar("queue_wait_seconds", &queueWaitSeconds_,
                         "summed submit-to-start wait");
    group.registerDistribution("image_prep_ms", &imagePrepMs_,
                               "per-item image chain latency");
    group.registerDistribution("audio_prep_ms", &audioPrepMs_,
                               "per-item audio chain latency");
}

} // namespace prep
} // namespace tb
