/**
 * @file
 * Host CPU core pool.
 *
 * The pool's capacity is N core-seconds per second. A data-preparation
 * task for a batch is a flow whose base unit is one sample, whose demand
 * weight is the calibrated core-seconds per sample, and whose rate cap is
 * the task's parallelism limit (a batch of B samples can use at most B
 * cores at once — and in practice far fewer, set by the software pipeline
 * width). The per-category accounting is the source of the "CPU" columns
 * of Figs 10a/11/22.
 */

#ifndef TRAINBOX_MEMSYS_CPU_POOL_HH
#define TRAINBOX_MEMSYS_CPU_POOL_HH

#include <string>

#include "fluid/fluid.hh"

namespace tb {

/** The host's CPU cores as a fluid resource. */
class CpuPool
{
  public:
    /**
     * @param net   contention engine
     * @param cores number of physical cores
     */
    CpuPool(FluidNetwork &net, double cores,
            const std::string &name = "host.cpu");

    FluidResource *resource() const { return res_; }

    double cores() const { return res_->capacity(); }

    /** Demand of @p coreSecPerUnit core-seconds per flow base unit. */
    FlowDemand demand(double coreSecPerUnit) const
    {
        return {res_, coreSecPerUnit};
    }

    /**
     * Rate cap (base units/s) for a task limited to @p maxParallelism
     * cores, each unit costing @p coreSecPerUnit.
     */
    static double
    parallelismCap(double maxParallelism, double coreSecPerUnit)
    {
        return coreSecPerUnit > 0.0 ? maxParallelism / coreSecPerUnit : 0.0;
    }

  private:
    FluidResource *res_;
};

} // namespace tb

#endif // TRAINBOX_MEMSYS_CPU_POOL_HH
