#include "memsys/cpu_pool.hh"

namespace tb {

CpuPool::CpuPool(FluidNetwork &net, double cores, const std::string &name)
    : res_(net.addResource(name, cores))
{
}

} // namespace tb
