/**
 * @file
 * Host DRAM bandwidth model.
 *
 * Host memory is a single bandwidth server. Every staging copy through the
 * host (SSD -> DRAM DMA write, CPU read/write passes during formatting,
 * DRAM -> accelerator DMA read) adds a weighted demand on this resource.
 * The per-category accounting is the source of the "Memory BW" columns of
 * Figs 10b/11/22.
 */

#ifndef TRAINBOX_MEMSYS_HOST_MEMORY_HH
#define TRAINBOX_MEMSYS_HOST_MEMORY_HH

#include <string>

#include "fluid/fluid.hh"

namespace tb {

/** Host DRAM as a shared bandwidth resource. */
class HostMemory
{
  public:
    /**
     * @param net       contention engine
     * @param bandwidth total DRAM bandwidth in bytes/s
     */
    HostMemory(FluidNetwork &net, Rate bandwidth,
               const std::string &name = "host.dram");

    /** The underlying fluid resource (for profiling). */
    FluidResource *resource() const { return res_; }

    /** Demand of @p bytesPerUnit DRAM bytes per flow base unit. */
    FlowDemand demand(double bytesPerUnit) const
    {
        return {res_, bytesPerUnit};
    }

    Rate bandwidth() const { return res_->capacity(); }

  private:
    FluidResource *res_;
};

} // namespace tb

#endif // TRAINBOX_MEMSYS_HOST_MEMORY_HH
