#include "memsys/host_memory.hh"

namespace tb {

HostMemory::HostMemory(FluidNetwork &net, Rate bandwidth,
                       const std::string &name)
    : res_(net.addResource(name, bandwidth))
{
}

} // namespace tb
