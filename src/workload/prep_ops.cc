#include "workload/prep_ops.hh"

#include "common/logging.hh"

namespace tb {
namespace workload {

const char *
stageCategory(PrepStage s)
{
    switch (s) {
      case PrepStage::SsdRead:
        return "ssd_read";
      case PrepStage::Formatting:
        return "formatting";
      case PrepStage::Augmentation:
        return "augmentation";
      case PrepStage::DataLoad:
        return "data_load";
      case PrepStage::Others:
        return "others";
    }
    return "?";
}

const std::vector<PrepOpCost> &
prepChain(InputType input)
{
    // Image sizes: 50,000 B JPEG -> 196,608 B RGB -> 150,528 B crop
    // (in-place view) -> 301,056 B bf16 tensor. CPU total = 1.572
    // ms/sample (see DESIGN.md §4 for the calibration anchors).
    static const std::vector<PrepOpCost> image = {
        // name            stage                     cpu(s)    memR      memW      fpga     gpu
        {"nvme_read",      PrepStage::SsdRead,       0.050e-3, 0.0,      50000.0,  0.0,     0.0},
        {"jpeg_decode",    PrepStage::Formatting,    0.800e-3, 50000.0,  196608.0, 45000.0, 11000.0},
        {"crop",           PrepStage::Formatting,    0.030e-3, 196608.0, 0.0,      400000.0, 90000.0},
        {"mirror",         PrepStage::Augmentation,  0.060e-3, 150528.0, 150528.0, 600000.0, 120000.0},
        {"gaussian_noise", PrepStage::Augmentation,  0.400e-3, 150528.0, 150528.0, 250000.0, 60000.0},
        {"cast_bf16",      PrepStage::Formatting,    0.100e-3, 150528.0, 301056.0, 500000.0, 150000.0},
        {"stage_copy",     PrepStage::DataLoad,      0.100e-3, 301056.0, 0.0,      0.0,     0.0},
        {"framework",      PrepStage::Others,        0.032e-3, 0.0,      0.0,      0.0,     0.0},
    };

    // Audio sizes: 222,720 B PCM -> spectrogram -> 222,080 B log-mel.
    // CPU total = 5.45 ms/sample.
    static const std::vector<PrepOpCost> audio = {
        {"nvme_read",      PrepStage::SsdRead,       0.080e-3, 0.0,      222720.0, 0.0,     0.0},
        {"spectrogram",    PrepStage::Formatting,    2.600e-3, 222720.0, 712192.0, 5200.0,  4000.0},
        {"mel_filterbank", PrepStage::Formatting,    0.900e-3, 712192.0, 222080.0, 20000.0, 15000.0},
        {"masking",        PrepStage::Augmentation,  0.700e-3, 222080.0, 222080.0, 40000.0, 30000.0},
        {"normalize",      PrepStage::Formatting,    0.720e-3, 222080.0, 222080.0, 50000.0, 35000.0},
        {"stage_copy",     PrepStage::DataLoad,      0.300e-3, 222080.0, 0.0,      0.0,     0.0},
        {"framework",      PrepStage::Others,        0.150e-3, 0.0,      0.0,      0.0,     0.0},
    };

    switch (input) {
      case InputType::Image:
        return image;
      case InputType::Audio:
        return audio;
    }
    panic("unknown input type");
}

} // namespace workload
} // namespace tb
