/**
 * @file
 * Aggregated per-sample demand model.
 *
 * Collapses a preparation chain (prep_ops.hh) into the per-sample demands
 * the server builder places on simulated resources, and combines Table I
 * compute throughput with the sync model into the *effective* accelerator
 * demand at a given scale.
 */

#ifndef TRAINBOX_WORKLOAD_COST_MODEL_HH
#define TRAINBOX_WORKLOAD_COST_MODEL_HH

#include <map>

#include "sync/sync_model.hh"
#include "workload/dataset.hh"
#include "workload/prep_ops.hh"

namespace tb {
namespace workload {

/** Per-sample demand summary of one preparation chain. */
struct PrepDemand
{
    /** Total CPU core-seconds per sample (baseline execution). */
    double cpuCoreSec = 0.0;

    /** CPU core-seconds per sample, split by stage. */
    std::map<PrepStage, double> cpuByStage;

    /** Total host-DRAM bytes (read+write) per sample on the CPU path. */
    Bytes memBytes = 0.0;

    /** Host-DRAM bytes per sample, split by stage. */
    std::map<PrepStage, Bytes> memByStage;

    /** Bytes read from SSD per sample (stored item size). */
    Bytes ssdBytes = 0.0;

    /** Bytes delivered to the accelerator per sample. */
    Bytes preparedBytes = 0.0;

    /** Chain throughput of one FPGA prep engine (samples/s). */
    Rate fpgaChainRate = 0.0;

    /** Chain throughput of one GPU used for preparation (samples/s). */
    Rate gpuChainRate = 0.0;
};

/** Demand summary for the given input type. */
PrepDemand prepDemand(InputType input);

/**
 * Effective per-accelerator training throughput at scale @p n: one batch
 * takes compute + ring-sync time. This is the demand the prep system must
 * satisfy per accelerator (samples/s).
 */
Rate effectiveDeviceThroughput(const ModelInfo &m, std::size_t n,
                               const sync::SyncConfig &sync_cfg);

/** Same, at a non-default per-accelerator batch size (Fig 20). */
Rate effectiveDeviceThroughput(const ModelInfo &m, std::size_t n,
                               const sync::SyncConfig &sync_cfg,
                               std::size_t batch_size);

/** Aggregate target throughput of @p n accelerators (samples/s). */
Rate targetThroughput(const ModelInfo &m, std::size_t n,
                      const sync::SyncConfig &sync_cfg);

} // namespace workload
} // namespace tb

#endif // TRAINBOX_WORKLOAD_COST_MODEL_HH
