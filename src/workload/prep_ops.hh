/**
 * @file
 * Data-preparation operator chains and per-operator costs.
 *
 * Each input type has a fixed chain of operators (Fig 4 / §II-A):
 *
 *   image: load -> JPEG decode -> crop -> mirror -> gaussian noise -> cast
 *   audio: load -> spectrogram -> Mel filterbank -> masking -> normalize
 *
 * Every operator carries:
 *   - its pipeline stage (drives the accounting categories of Figs 11/22),
 *   - CPU cost in core-seconds per sample (baseline execution),
 *   - host-DRAM bytes read/written per sample (baseline execution),
 *   - FPGA and GPU engine throughput in samples/s (offloaded execution;
 *     0 = the engine cannot run this operator).
 *
 * CPU costs are calibrated against the paper's anchors (see DESIGN.md §4):
 * the per-sample totals make Inception-v4 saturate at 18.3 accelerators
 * and TF-SR at 4.4 on a 48-core host, and put the maximum core demand at
 * 256 accelerators at ~4,833 cores = 100.7x DGX-2 (all §III-B/§III-C
 * numbers).
 */

#ifndef TRAINBOX_WORKLOAD_PREP_OPS_HH
#define TRAINBOX_WORKLOAD_PREP_OPS_HH

#include <string>
#include <vector>

#include "common/units.hh"
#include "workload/model_zoo.hh"

namespace tb {
namespace workload {

/** Pipeline stage == accounting category (Figs 9/11/22 legends). */
enum class PrepStage
{
    SsdRead,      ///< NVMe driver work / SSD DMA
    Formatting,   ///< decode, crop, cast, spectrogram, mel, normalize
    Augmentation, ///< mirror, noise, masking
    DataLoad,     ///< staging copies into accelerator-visible buffers
    Others,       ///< framework overheads
};

/** Accounting-category string used on FluidResources. */
const char *stageCategory(PrepStage s);

/** One operator of a preparation chain. */
struct PrepOpCost
{
    std::string name;
    PrepStage stage;

    /** Host-CPU execution cost (core-seconds per sample). */
    double cpuCoreSec;

    /** Host DRAM bytes read per sample when executed on the CPU. */
    Bytes memReadBytes;

    /** Host DRAM bytes written per sample when executed on the CPU. */
    Bytes memWriteBytes;

    /** Offloaded throughput per FPGA engine (samples/s; 0 = n/a). */
    Rate fpgaRate;

    /** Offloaded throughput per GPU (samples/s; 0 = n/a). */
    Rate gpuRate;
};

/** The full operator chain for an input type. */
const std::vector<PrepOpCost> &prepChain(InputType input);

} // namespace workload
} // namespace tb

#endif // TRAINBOX_WORKLOAD_PREP_OPS_HH
