/**
 * @file
 * The seven training workloads of Table I.
 *
 * Throughput values are per TPU-v3-8-class accelerator at the listed batch
 * size, exactly as the paper reports them; the simulator treats them as
 * the accelerator's compute capability (sync cost is added separately).
 */

#ifndef TRAINBOX_WORKLOAD_MODEL_ZOO_HH
#define TRAINBOX_WORKLOAD_MODEL_ZOO_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/units.hh"

namespace tb {
namespace workload {

/** Neural network family (Table I, first column). */
enum class NnType { Cnn, Rnn, Transformer };

/** What kind of training samples the model consumes. */
enum class InputType { Image, Audio };

/** Identifier for each Table I workload. */
enum class ModelId
{
    Vgg19,
    Resnet50,
    InceptionV4,
    RnnS,
    RnnL,
    TfSr,
    TfAa,
};

/** Static description of one workload (one Table I row). */
struct ModelInfo
{
    ModelId id;
    std::string name;
    std::string task;
    NnType type;
    InputType input;
    /** Per-accelerator batch size. */
    std::size_t batchSize;
    /** Gradient/model size synchronized each step. */
    Bytes modelBytes;
    /** Samples/s one accelerator sustains (compute only). */
    Rate deviceThroughput;
};

/** All seven workloads in Table I order. */
const std::vector<ModelInfo> &modelZoo();

/** Lookup by id. */
const ModelInfo &model(ModelId id);

/** Lookup by name; fatal() on unknown names (user-facing). */
const ModelInfo &modelByName(const std::string &name);

/** Compute time of one batch on one accelerator (no sync). */
Time computeLatency(const ModelInfo &m);

/** Compute time at an alternative batch size (throughput derated for
 *  small batches — accelerators lose efficiency under-filled, Fig 20). */
Time computeLatency(const ModelInfo &m, std::size_t batch_size);

/** Effective accelerator throughput at a given batch size (samples/s). */
Rate deviceThroughputAtBatch(const ModelInfo &m, std::size_t batch_size);

/**
 * Size of one full training checkpoint: the parameters plus
 * @p optimizer_slots extra parameter-sized tensors of optimizer state
 * (Adam keeps two moments => 2.0). (1 + slots) * modelBytes.
 */
Bytes checkpointBytes(const ModelInfo &m, double optimizer_slots);

/** Human-readable names. */
const char *toString(NnType t);
const char *toString(InputType t);

} // namespace workload
} // namespace tb

#endif // TRAINBOX_WORKLOAD_MODEL_ZOO_HH
