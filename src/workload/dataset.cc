#include "workload/dataset.hh"

#include "common/logging.hh"

namespace tb {
namespace workload {

using namespace units;

const DatasetInfo &
datasetFor(InputType input)
{
    // ImageNet: 256x256 RGB stored as JPEG (~50 KB mean), decoded to
    // 256*256*3 = 196,608 B, prepared as a 224x224x3 bf16 tensor =
    // 301,056 B after crop + cast (char -> bf16 amplification; TPUs take
    // bf16 inputs — see DESIGN.md for this substitution of the paper's
    // char -> float wording).
    static const DatasetInfo imagenet = {
        "imagenet-synthetic", InputType::Image,
        50.0 * KB, 196608.0, 301056.0, 14'000'000,
    };
    // LibriSpeech: 6.96 s mean streams at 16 kHz / 16-bit = 222,720 B,
    // prepared as a log-Mel spectrogram: ~694 frames x 80 mels x float
    // = 222,080 B (win 400 / hop 160, matching src/prep/audio defaults).
    static const DatasetInfo librispeech = {
        "librispeech-synthetic", InputType::Audio,
        222720.0, 222720.0, 222080.0, 281'241,
    };
    switch (input) {
      case InputType::Image:
        return imagenet;
      case InputType::Audio:
        return librispeech;
    }
    panic("unknown input type");
}

Bytes
staticPreparationBytes(const DatasetInfo &ds, std::size_t variants_per_item,
                       Bytes bytes_per_variant)
{
    if (bytes_per_variant <= 0.0)
        bytes_per_variant = ds.itemPreparedBytes;
    return bytes_per_variant * static_cast<double>(variants_per_item) *
           static_cast<double>(ds.numItems);
}

} // namespace workload
} // namespace tb
