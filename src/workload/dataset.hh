/**
 * @file
 * Dataset descriptors (§III-B1 of the paper).
 *
 * The performance model only needs the size statistics of the training
 * data: ImageNet-like 256x256 JPEGs for image workloads, LibriSpeech-like
 * 6.96 s sound streams for audio workloads. The functional pipelines in
 * src/prep generate synthetic items with exactly these shapes.
 */

#ifndef TRAINBOX_WORKLOAD_DATASET_HH
#define TRAINBOX_WORKLOAD_DATASET_HH

#include <cstddef>
#include <string>

#include "common/units.hh"
#include "workload/model_zoo.hh"

namespace tb {
namespace workload {

/** Size statistics of one dataset. */
struct DatasetInfo
{
    std::string name;
    InputType input;

    /** Mean stored (compressed) item size on SSD. */
    Bytes itemStoredBytes;

    /** Item size right after decode (raw RGB / PCM samples). */
    Bytes itemDecodedBytes;

    /** Item size delivered to the accelerator (float tensor / log-mel). */
    Bytes itemPreparedBytes;

    /** Number of items (for the static-preparation storage argument). */
    std::size_t numItems;
};

/** Dataset used by workloads of the given input type. */
const DatasetInfo &datasetFor(InputType input);

/**
 * Storage needed to *statically* pre-augment the dataset (§III-D): each
 * item expands into @p variantsPerItem variants of @p bytesPerVariant
 * bytes (0 = the dataset's prepared size). Reproduces the paper's
 * ~2.2 PB argument against static data preparation (which counts
 * 224x224x3 uint8 = 0.15 MB variants).
 */
Bytes staticPreparationBytes(const DatasetInfo &ds,
                             std::size_t variantsPerItem,
                             Bytes bytesPerVariant = 0.0);

} // namespace workload
} // namespace tb

#endif // TRAINBOX_WORKLOAD_DATASET_HH
