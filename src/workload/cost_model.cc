#include "workload/cost_model.hh"

#include <algorithm>
#include <limits>

namespace tb {
namespace workload {

PrepDemand
prepDemand(InputType input)
{
    PrepDemand d;
    d.fpgaChainRate = std::numeric_limits<double>::infinity();
    d.gpuChainRate = std::numeric_limits<double>::infinity();

    const DatasetInfo &ds = datasetFor(input);
    d.ssdBytes = ds.itemStoredBytes;
    d.preparedBytes = ds.itemPreparedBytes;

    for (const auto &op : prepChain(input)) {
        d.cpuCoreSec += op.cpuCoreSec;
        d.cpuByStage[op.stage] += op.cpuCoreSec;
        const Bytes bytes = op.memReadBytes + op.memWriteBytes;
        d.memBytes += bytes;
        d.memByStage[op.stage] += bytes;
        // A pipelined engine's chain rate is its slowest stage; operators
        // an engine cannot run (rate 0) are stage-copy/driver work that
        // disappears when offloaded.
        if (op.fpgaRate > 0.0)
            d.fpgaChainRate = std::min(d.fpgaChainRate, op.fpgaRate);
        if (op.gpuRate > 0.0)
            d.gpuChainRate = std::min(d.gpuChainRate, op.gpuRate);
    }
    return d;
}

Rate
effectiveDeviceThroughput(const ModelInfo &m, std::size_t n,
                          const sync::SyncConfig &sync_cfg,
                          std::size_t batch_size)
{
    const Time t_comp = computeLatency(m, batch_size);
    const Time t_sync = sync::syncLatency(sync_cfg, n, m.modelBytes);
    return static_cast<double>(batch_size) / (t_comp + t_sync);
}

Rate
effectiveDeviceThroughput(const ModelInfo &m, std::size_t n,
                          const sync::SyncConfig &sync_cfg)
{
    const Time t_comp = computeLatency(m);
    const Time t_sync = sync::syncLatency(sync_cfg, n, m.modelBytes);
    return static_cast<double>(m.batchSize) / (t_comp + t_sync);
}

Rate
targetThroughput(const ModelInfo &m, std::size_t n,
                 const sync::SyncConfig &sync_cfg)
{
    return static_cast<double>(n) *
           effectiveDeviceThroughput(m, n, sync_cfg);
}

} // namespace workload
} // namespace tb
