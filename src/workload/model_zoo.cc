#include "workload/model_zoo.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/units.hh"

namespace tb {
namespace workload {

using namespace units;

const std::vector<ModelInfo> &
modelZoo()
{
    static const std::vector<ModelInfo> zoo = {
        {ModelId::Vgg19, "VGG-19", "Image classification", NnType::Cnn,
         InputType::Image, 2048, 548.0 * MB, 3062.0},
        {ModelId::Resnet50, "Resnet-50", "Image classification",
         NnType::Cnn, InputType::Image, 8192, 97.5 * MB, 7431.0},
        {ModelId::InceptionV4, "Inception-v4", "Image classification",
         NnType::Cnn, InputType::Image, 2048, 162.7 * MB, 1669.0},
        {ModelId::RnnS, "RNN-S", "Image captioning", NnType::Rnn,
         InputType::Image, 4096, 1.0 * MB, 12022.0},
        {ModelId::RnnL, "RNN-L", "Image captioning", NnType::Rnn,
         InputType::Image, 2048, 16.0 * MB, 6495.0},
        {ModelId::TfSr, "Transformer-SR", "Speech recognition",
         NnType::Transformer, InputType::Audio, 512, 268.3 * MB, 2001.0},
        {ModelId::TfAa, "Transformer-AA", "Audio analysis",
         NnType::Transformer, InputType::Audio, 512, 162.5 * MB, 2889.0},
    };
    return zoo;
}

const ModelInfo &
model(ModelId id)
{
    for (const auto &m : modelZoo())
        if (m.id == id)
            return m;
    panic("unknown model id %d", static_cast<int>(id));
}

const ModelInfo &
modelByName(const std::string &name)
{
    for (const auto &m : modelZoo())
        if (m.name == name)
            return m;
    fatal("unknown model '%s'", name.c_str());
}

Time
computeLatency(const ModelInfo &m)
{
    return static_cast<double>(m.batchSize) / m.deviceThroughput;
}

Rate
deviceThroughputAtBatch(const ModelInfo &m, std::size_t batch_size)
{
    panic_if(batch_size == 0, "zero batch size");
    // Under-filled accelerators lose efficiency: model a fixed per-batch
    // launch overhead so throughput follows B / (B/T + c). The overhead
    // is chosen so throughput halves at ~1/16 of the reference batch,
    // which reproduces the Fig 20 trend of larger batches helping the
    // accelerator side.
    const double ref_batch = static_cast<double>(m.batchSize);
    const double t_ref = ref_batch / m.deviceThroughput;
    const double launch_overhead = t_ref / 17.0;
    const double per_sample = (t_ref - launch_overhead) / ref_batch;
    const double b = static_cast<double>(batch_size);
    return b / (b * per_sample + launch_overhead);
}

Time
computeLatency(const ModelInfo &m, std::size_t batch_size)
{
    return static_cast<double>(batch_size) /
           deviceThroughputAtBatch(m, batch_size);
}

Bytes
checkpointBytes(const ModelInfo &m, double optimizer_slots)
{
    panic_if(optimizer_slots < 0.0, "negative optimizer slots");
    return (1.0 + optimizer_slots) * m.modelBytes;
}

const char *
toString(NnType t)
{
    switch (t) {
      case NnType::Cnn:
        return "CNN";
      case NnType::Rnn:
        return "RNN";
      case NnType::Transformer:
        return "Transformer";
    }
    return "?";
}

const char *
toString(InputType t)
{
    switch (t) {
      case InputType::Image:
        return "Image";
      case InputType::Audio:
        return "Audio";
    }
    return "?";
}

} // namespace workload
} // namespace tb
