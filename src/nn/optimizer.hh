/**
 * @file
 * SGD with momentum and optional weight decay.
 */

#ifndef TRAINBOX_NN_OPTIMIZER_HH
#define TRAINBOX_NN_OPTIMIZER_HH

#include <vector>

#include "nn/tensor.hh"

namespace tb {
namespace nn {

/** Classic SGD: v = mu v - lr (g + wd p); p += v. */
class SgdOptimizer
{
  public:
    struct Config
    {
        double learningRate = 0.05;
        double momentum = 0.9;
        double weightDecay = 1e-4;
    };

    SgdOptimizer();
    explicit SgdOptimizer(const Config &cfg) : cfg_(cfg) {}

    /** Register a (parameter, gradient) pair; allocates velocity. */
    void attach(Matrix *param, Matrix *grad);

    /** Apply one update to every registered parameter. */
    void step();

    const Config &config() const { return cfg_; }
    void setLearningRate(double lr) { cfg_.learningRate = lr; }

  private:
    struct Slot
    {
        Matrix *param;
        Matrix *grad;
        Matrix velocity;
    };

    Config cfg_;
    std::vector<Slot> slots_;
};

} // namespace nn
} // namespace tb

#endif // TRAINBOX_NN_OPTIMIZER_HH
