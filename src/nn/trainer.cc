#include "nn/trainer.hh"

#include <algorithm>
#include <numeric>

namespace tb {
namespace nn {

TrainHistory
trainShapeClassifier(const TrainerConfig &cfg, std::uint64_t seed)
{
    Rng rng(seed);
    Rng data_rng = rng.split();
    Rng aug_rng = rng.split();

    const ShapeDataset train = makeTrainSet(cfg.trainPerClass, data_rng);
    const ShapeDataset test =
        makeTestSet(cfg.testPerClass, cfg.testMaxShift, data_rng);

    std::vector<std::size_t> sizes;
    sizes.push_back(static_cast<std::size_t>(kShapeImageSize) *
                    kShapeImageSize);
    for (auto h : cfg.hiddenSizes)
        sizes.push_back(h);
    sizes.push_back(kNumShapeClasses);
    Mlp model(sizes, rng, cfg.optimizer);

    std::vector<std::size_t> order(train.size());
    std::iota(order.begin(), order.end(), 0);

    TrainHistory history;
    for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
        // Shuffle sample order each epoch.
        for (std::size_t i = order.size(); i > 1; --i)
            std::swap(order[i - 1],
                      order[static_cast<std::size_t>(
                          rng.uniformInt(0, static_cast<std::int64_t>(
                                                i - 1)))]);

        double loss_sum = 0.0;
        std::size_t batches = 0;
        for (std::size_t off = 0; off < train.size();
             off += cfg.batchSize) {
            const std::size_t n =
                std::min(cfg.batchSize, train.size() - off);
            Matrix batch(n, train.inputs.cols());
            std::vector<int> labels(n);
            for (std::size_t i = 0; i < n; ++i) {
                const std::size_t src = order[off + i];
                for (std::size_t c = 0; c < train.inputs.cols(); ++c)
                    batch.at(i, c) = train.inputs.at(src, c);
                labels[i] = train.labels[src];
            }
            if (cfg.augment)
                augmentBatch(batch, labels, cfg.augmentMaxShift, aug_rng);
            loss_sum += model.trainStep(batch, labels);
            ++batches;
        }
        history.trainLoss.push_back(loss_sum /
                                    static_cast<double>(batches));

        const Matrix logits = model.forward(test.inputs);
        history.testAccuracy.push_back(accuracy(logits, test.labels));
    }
    return history;
}

} // namespace nn
} // namespace tb
