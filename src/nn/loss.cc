#include "nn/loss.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace tb {
namespace nn {

Matrix
softmax(const Matrix &logits)
{
    Matrix probs = logits;
    for (std::size_t r = 0; r < probs.rows(); ++r) {
        float maxv = probs.at(r, 0);
        for (std::size_t c = 1; c < probs.cols(); ++c)
            maxv = std::max(maxv, probs.at(r, c));
        float sum = 0.0f;
        for (std::size_t c = 0; c < probs.cols(); ++c) {
            probs.at(r, c) = std::exp(probs.at(r, c) - maxv);
            sum += probs.at(r, c);
        }
        for (std::size_t c = 0; c < probs.cols(); ++c)
            probs.at(r, c) /= sum;
    }
    return probs;
}

LossResult
softmaxCrossEntropy(const Matrix &logits, const std::vector<int> &labels)
{
    panic_if(labels.size() != logits.rows(), "label count mismatch");
    LossResult res;
    res.gradient = softmax(logits);
    const float inv_batch = 1.0f / static_cast<float>(logits.rows());
    for (std::size_t r = 0; r < logits.rows(); ++r) {
        const int label = labels[r];
        panic_if(label < 0 ||
                     label >= static_cast<int>(logits.cols()),
                 "label %d out of range", label);
        const float p =
            std::max(res.gradient.at(r, static_cast<std::size_t>(label)),
                     1e-12f);
        res.loss -= std::log(p);
        res.gradient.at(r, static_cast<std::size_t>(label)) -= 1.0f;
    }
    res.loss /= static_cast<double>(logits.rows());
    for (std::size_t i = 0; i < res.gradient.size(); ++i)
        res.gradient.data()[i] *= inv_batch;
    return res;
}

double
accuracy(const Matrix &logits, const std::vector<int> &labels)
{
    return topKAccuracy(logits, labels, 1);
}

double
topKAccuracy(const Matrix &logits, const std::vector<int> &labels,
             std::size_t k)
{
    panic_if(labels.size() != logits.rows(), "label count mismatch");
    panic_if(k == 0 || k > logits.cols(), "bad k=%zu", k);
    std::size_t hits = 0;
    std::vector<std::size_t> idx(logits.cols());
    for (std::size_t r = 0; r < logits.rows(); ++r) {
        for (std::size_t c = 0; c < logits.cols(); ++c)
            idx[c] = c;
        std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                          [&](std::size_t a, std::size_t b) {
                              return logits.at(r, a) > logits.at(r, b);
                          });
        for (std::size_t i = 0; i < k; ++i)
            if (static_cast<int>(idx[i]) == labels[r]) {
                ++hits;
                break;
            }
    }
    return static_cast<double>(hits) /
           static_cast<double>(logits.rows());
}

} // namespace nn
} // namespace tb
