#include "nn/optimizer.hh"

#include "common/logging.hh"

namespace tb {
namespace nn {

SgdOptimizer::SgdOptimizer() : cfg_() {}

void
SgdOptimizer::attach(Matrix *param, Matrix *grad)
{
    panic_if(param == nullptr || grad == nullptr, "null optimizer slot");
    panic_if(!param->sameShape(*grad), "param/grad shape mismatch");
    slots_.push_back({param, grad, Matrix(param->rows(), param->cols())});
}

void
SgdOptimizer::step()
{
    const float lr = static_cast<float>(cfg_.learningRate);
    const float mu = static_cast<float>(cfg_.momentum);
    const float wd = static_cast<float>(cfg_.weightDecay);
    for (auto &slot : slots_) {
        for (std::size_t i = 0; i < slot.param->size(); ++i) {
            const float g =
                slot.grad->data()[i] + wd * slot.param->data()[i];
            slot.velocity.data()[i] = mu * slot.velocity.data()[i] -
                                      lr * g;
            slot.param->data()[i] += slot.velocity.data()[i];
        }
    }
}

} // namespace nn
} // namespace tb
