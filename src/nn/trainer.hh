/**
 * @file
 * Training harness for the Fig 5 experiment: runs epochs of mini-batch
 * SGD on the shape dataset with or without run-time augmentation and
 * records per-epoch test accuracy.
 */

#ifndef TRAINBOX_NN_TRAINER_HH
#define TRAINBOX_NN_TRAINER_HH

#include <vector>

#include "nn/mlp.hh"
#include "nn/synth_data.hh"

namespace tb {
namespace nn {

/** Experiment knobs. */
struct TrainerConfig
{
    int epochs = 20;
    std::size_t batchSize = 32;
    bool augment = true;
    int augmentMaxShift = 3;
    std::vector<std::size_t> hiddenSizes = {96};
    SgdOptimizer::Config optimizer{0.05, 0.9, 1e-4};
    int trainPerClass = 40;
    int testPerClass = 100;
    int testMaxShift = 3;
};

/** Per-epoch results. */
struct TrainHistory
{
    std::vector<double> trainLoss;
    std::vector<double> testAccuracy;

    double finalAccuracy() const
    {
        return testAccuracy.empty() ? 0.0 : testAccuracy.back();
    }
};

/** Run the experiment end to end (deterministic given the seed). */
TrainHistory trainShapeClassifier(const TrainerConfig &cfg,
                                  std::uint64_t seed);

} // namespace nn
} // namespace tb

#endif // TRAINBOX_NN_TRAINER_HH
