/**
 * @file
 * Minimal dense-matrix type for the nn library. Row-major float storage
 * plus the handful of BLAS-like operations the MLP needs. Kept small on
 * purpose: the Fig 5 experiment needs a *verifiable* trainer, not a fast
 * one.
 */

#ifndef TRAINBOX_NN_TENSOR_HH
#define TRAINBOX_NN_TENSOR_HH

#include <cstddef>
#include <vector>

#include "common/random.hh"

namespace tb {
namespace nn {

/** Row-major float matrix. */
class Matrix
{
  public:
    Matrix() = default;
    Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }

    float &at(std::size_t r, std::size_t c);
    float at(std::size_t r, std::size_t c) const;

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Fill with N(0, stddev) values. */
    void randomize(Rng &rng, double stddev);

    void fill(float v);

    bool
    sameShape(const Matrix &o) const
    {
        return rows_ == o.rows_ && cols_ == o.cols_;
    }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float> data_;
};

/** out = a x b. Shapes must agree (panics otherwise). */
void matmul(const Matrix &a, const Matrix &b, Matrix &out);

/** out = a^T x b. */
void matmulTransA(const Matrix &a, const Matrix &b, Matrix &out);

/** out = a x b^T. */
void matmulTransB(const Matrix &a, const Matrix &b, Matrix &out);

/** a += scale * b (elementwise, same shape). */
void axpy(Matrix &a, const Matrix &b, float scale);

} // namespace nn
} // namespace tb

#endif // TRAINBOX_NN_TENSOR_HH
