#include "nn/mlp.hh"

#include "common/logging.hh"

namespace tb {
namespace nn {

Mlp::Mlp(const std::vector<std::size_t> &layer_sizes, Rng &rng,
         SgdOptimizer::Config opt)
    : opt_(opt)
{
    fatal_if(layer_sizes.size() < 2, "MLP needs at least input + output");
    for (std::size_t i = 0; i + 1 < layer_sizes.size(); ++i)
        dense_.emplace_back(layer_sizes[i], layer_sizes[i + 1], rng);
    relus_.resize(dense_.size() - 1);
    for (auto &layer : dense_) {
        opt_.attach(&layer.weights(), &layer.weightGrad());
        opt_.attach(&layer.bias(), &layer.biasGrad());
    }
}

Matrix
Mlp::forward(const Matrix &x)
{
    Matrix h = x;
    for (std::size_t i = 0; i < dense_.size(); ++i) {
        h = dense_[i].forward(h);
        if (i < relus_.size())
            h = relus_[i].forward(h);
    }
    return h;
}

double
Mlp::trainStep(const Matrix &x, const std::vector<int> &labels)
{
    for (auto &layer : dense_)
        layer.zeroGrad();

    const Matrix logits = forward(x);
    LossResult loss = softmaxCrossEntropy(logits, labels);

    Matrix grad = std::move(loss.gradient);
    for (std::size_t i = dense_.size(); i-- > 0;) {
        if (i < relus_.size())
            grad = relus_[i].backward(grad);
        grad = dense_[i].backward(grad);
    }
    opt_.step();
    return loss.loss;
}

std::size_t
Mlp::numClasses() const
{
    return dense_.back().outputSize();
}

std::size_t
Mlp::inputSize() const
{
    return dense_.front().inputSize();
}

std::size_t
Mlp::numParameters() const
{
    std::size_t n = 0;
    for (const auto &layer : dense_)
        n += layer.weights().size() + layer.outputSize();
    return n;
}

} // namespace nn
} // namespace tb
