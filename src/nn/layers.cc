#include "nn/layers.hh"

#include <cmath>

#include "common/logging.hh"

namespace tb {
namespace nn {

DenseLayer::DenseLayer(std::size_t in, std::size_t out, Rng &rng)
    : w_(in, out), b_(1, out), dw_(in, out), db_(1, out)
{
    w_.randomize(rng, std::sqrt(2.0 / static_cast<double>(in)));
}

Matrix
DenseLayer::forward(const Matrix &x)
{
    panic_if(x.cols() != w_.rows(), "dense input width mismatch");
    lastInput_ = x;
    Matrix y;
    matmul(x, w_, y);
    for (std::size_t r = 0; r < y.rows(); ++r)
        for (std::size_t c = 0; c < y.cols(); ++c)
            y.at(r, c) += b_.at(0, c);
    return y;
}

Matrix
DenseLayer::backward(const Matrix &dy)
{
    panic_if(lastInput_.rows() != dy.rows(), "backward batch mismatch");
    Matrix dw;
    matmulTransA(lastInput_, dy, dw);
    axpy(dw_, dw, 1.0f);
    for (std::size_t r = 0; r < dy.rows(); ++r)
        for (std::size_t c = 0; c < dy.cols(); ++c)
            db_.at(0, c) += dy.at(r, c);
    Matrix dx;
    matmulTransB(dy, w_, dx);
    return dx;
}

void
DenseLayer::zeroGrad()
{
    dw_.fill(0.0f);
    db_.fill(0.0f);
}

Matrix
ReluLayer::forward(const Matrix &x)
{
    lastInput_ = x;
    Matrix y = x;
    for (std::size_t i = 0; i < y.size(); ++i)
        if (y.data()[i] < 0.0f)
            y.data()[i] = 0.0f;
    return y;
}

Matrix
ReluLayer::backward(const Matrix &dy) const
{
    panic_if(!lastInput_.sameShape(dy), "relu backward shape mismatch");
    Matrix dx = dy;
    for (std::size_t i = 0; i < dx.size(); ++i)
        if (lastInput_.data()[i] <= 0.0f)
            dx.data()[i] = 0.0f;
    return dx;
}

} // namespace nn
} // namespace tb
