#include "nn/tensor.hh"

#include "common/logging.hh"

namespace tb {
namespace nn {

Matrix::Matrix(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
}

float &
Matrix::at(std::size_t r, std::size_t c)
{
    panic_if(r >= rows_ || c >= cols_, "matrix access (%zu,%zu) of %zux%zu",
             r, c, rows_, cols_);
    return data_[r * cols_ + c];
}

float
Matrix::at(std::size_t r, std::size_t c) const
{
    panic_if(r >= rows_ || c >= cols_, "matrix access (%zu,%zu) of %zux%zu",
             r, c, rows_, cols_);
    return data_[r * cols_ + c];
}

void
Matrix::randomize(Rng &rng, double stddev)
{
    for (auto &v : data_)
        v = static_cast<float>(rng.gaussian(0.0, stddev));
}

void
Matrix::fill(float v)
{
    std::fill(data_.begin(), data_.end(), v);
}

void
matmul(const Matrix &a, const Matrix &b, Matrix &out)
{
    panic_if(a.cols() != b.rows(), "matmul shape mismatch");
    out = Matrix(a.rows(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t k = 0; k < a.cols(); ++k) {
            const float av = a.at(i, k);
            if (av == 0.0f)
                continue;
            for (std::size_t j = 0; j < b.cols(); ++j)
                out.at(i, j) += av * b.at(k, j);
        }
}

void
matmulTransA(const Matrix &a, const Matrix &b, Matrix &out)
{
    panic_if(a.rows() != b.rows(), "matmulTransA shape mismatch");
    out = Matrix(a.cols(), b.cols());
    for (std::size_t k = 0; k < a.rows(); ++k)
        for (std::size_t i = 0; i < a.cols(); ++i) {
            const float av = a.at(k, i);
            if (av == 0.0f)
                continue;
            for (std::size_t j = 0; j < b.cols(); ++j)
                out.at(i, j) += av * b.at(k, j);
        }
}

void
matmulTransB(const Matrix &a, const Matrix &b, Matrix &out)
{
    panic_if(a.cols() != b.cols(), "matmulTransB shape mismatch");
    out = Matrix(a.rows(), b.rows());
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < b.rows(); ++j) {
            float acc = 0.0f;
            for (std::size_t k = 0; k < a.cols(); ++k)
                acc += a.at(i, k) * b.at(j, k);
            out.at(i, j) = acc;
        }
}

void
axpy(Matrix &a, const Matrix &b, float scale)
{
    panic_if(!a.sameShape(b), "axpy shape mismatch");
    for (std::size_t i = 0; i < a.size(); ++i)
        a.data()[i] += scale * b.data()[i];
}

} // namespace nn
} // namespace tb
