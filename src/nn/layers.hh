/**
 * @file
 * Layers for the MLP: fully connected (with bias) and ReLU. Each layer
 * implements forward on a batch (rows = samples) and backward returning
 * the input gradient while accumulating parameter gradients.
 */

#ifndef TRAINBOX_NN_LAYERS_HH
#define TRAINBOX_NN_LAYERS_HH

#include "nn/tensor.hh"

namespace tb {
namespace nn {

/** y = x W + b, with gradient bookkeeping. */
class DenseLayer
{
  public:
    /** He-style initialization. */
    DenseLayer(std::size_t in, std::size_t out, Rng &rng);

    /** Forward a batch (rows = samples, cols = in). */
    Matrix forward(const Matrix &x);

    /**
     * Backward: consume dL/dy, produce dL/dx; accumulates dW/db.
     * Must follow a forward() on the same batch.
     */
    Matrix backward(const Matrix &dy);

    /** Zero accumulated gradients. */
    void zeroGrad();

    Matrix &weights() { return w_; }
    Matrix &bias() { return b_; }
    Matrix &weightGrad() { return dw_; }
    Matrix &biasGrad() { return db_; }
    const Matrix &weights() const { return w_; }

    std::size_t inputSize() const { return w_.rows(); }
    std::size_t outputSize() const { return w_.cols(); }

  private:
    Matrix w_, b_;
    Matrix dw_, db_;
    Matrix lastInput_;
};

/** Elementwise max(0, x). */
class ReluLayer
{
  public:
    Matrix forward(const Matrix &x);
    Matrix backward(const Matrix &dy) const;

  private:
    Matrix lastInput_;
};

} // namespace nn
} // namespace tb

#endif // TRAINBOX_NN_LAYERS_HH
