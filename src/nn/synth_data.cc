#include "nn/synth_data.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/math_util.hh"

namespace tb {
namespace nn {

namespace {

constexpr int N = kShapeImageSize;

/** Canonical (untranslated) membership test for a class at (x, y). */
bool
canonicalPixel(int label, int x, int y)
{
    const bool inner = x >= 3 && x <= 12 && y >= 3 && y <= 12;
    switch (label) {
      case 0: // square outline
        return (x >= 4 && x <= 11 && y >= 4 && y <= 11) &&
               (x == 4 || x == 11 || y == 4 || y == 11);
      case 1: // filled square
        return x >= 5 && x <= 10 && y >= 5 && y <= 10;
      case 2: // plus
        return inner && ((y >= 7 && y <= 8) || (x >= 7 && x <= 8));
      case 3: // X
        return inner &&
               (std::abs(x - y) <= 1 || std::abs(x + y - (N - 1)) <= 1);
      case 4: // horizontal stripes
        return inner && (y % 4 < 2);
      case 5: // vertical stripes
        return inner && (x % 4 < 2);
      case 6: { // ring
        const double cx = 7.5, cy = 7.5;
        const double r = std::sqrt((x - cx) * (x - cx) +
                                   (y - cy) * (y - cy));
        return r >= 2.5 && r <= 4.5;
      }
      case 7: // checkerboard
        return inner && (((x / 2) + (y / 2)) % 2 == 0);
      default:
        panic("bad shape label %d", label);
    }
}

void
addPixelNoise(std::vector<float> &img, double stddev, Rng &rng)
{
    if (stddev <= 0.0)
        return;
    for (auto &p : img)
        p = static_cast<float>(
            clamp(p + rng.gaussian(0.0, stddev), 0.0, 1.0));
}

} // namespace

const char *
shapeName(int label)
{
    static const char *names[kNumShapeClasses] = {
        "square", "box", "plus", "cross", "hstripes", "vstripes",
        "ring", "checker"};
    panic_if(label < 0 || label >= kNumShapeClasses, "bad label %d",
             label);
    return names[label];
}

std::vector<float>
renderShape(int label, int dx, int dy, bool mirror, double noise_stddev,
            Rng &rng)
{
    std::vector<float> img(static_cast<std::size_t>(N) * N, 0.0f);
    for (int y = 0; y < N; ++y) {
        for (int x = 0; x < N; ++x) {
            int sx = x - dx;
            const int sy = y - dy;
            if (mirror)
                sx = N - 1 - sx;
            if (sx < 0 || sx >= N || sy < 0 || sy >= N)
                continue;
            if (canonicalPixel(label, sx, sy))
                img[static_cast<std::size_t>(y) * N + x] = 1.0f;
        }
    }
    addPixelNoise(img, noise_stddev, rng);
    return img;
}

ShapeDataset
makeTrainSet(int per_class, Rng &rng)
{
    ShapeDataset ds;
    const int n = per_class * kNumShapeClasses;
    ds.inputs = Matrix(static_cast<std::size_t>(n),
                       static_cast<std::size_t>(N) * N);
    ds.labels.reserve(n);
    std::size_t row = 0;
    for (int label = 0; label < kNumShapeClasses; ++label) {
        for (int i = 0; i < per_class; ++i) {
            // Natural capture jitter of +/- 2 pixels; the test set moves
            // +/- 3 and mirrors, which only augmentation covers.
            const int dx = static_cast<int>(rng.uniformInt(-2, 2));
            const int dy = static_cast<int>(rng.uniformInt(-2, 2));
            const std::vector<float> img =
                renderShape(label, dx, dy, false, 0.03, rng);
            for (std::size_t c = 0; c < img.size(); ++c)
                ds.inputs.at(row, c) = img[c];
            ds.labels.push_back(label);
            ++row;
        }
    }
    return ds;
}

ShapeDataset
makeTestSet(int per_class, int max_shift, Rng &rng)
{
    ShapeDataset ds;
    const int n = per_class * kNumShapeClasses;
    ds.inputs = Matrix(static_cast<std::size_t>(n),
                       static_cast<std::size_t>(N) * N);
    ds.labels.reserve(n);
    std::size_t row = 0;
    for (int label = 0; label < kNumShapeClasses; ++label) {
        for (int i = 0; i < per_class; ++i) {
            const int dx =
                static_cast<int>(rng.uniformInt(-max_shift, max_shift));
            const int dy =
                static_cast<int>(rng.uniformInt(-max_shift, max_shift));
            const bool mirror = rng.uniform() < 0.5;
            const std::vector<float> img =
                renderShape(label, dx, dy, mirror, 0.05, rng);
            for (std::size_t c = 0; c < img.size(); ++c)
                ds.inputs.at(row, c) = img[c];
            ds.labels.push_back(label);
            ++row;
        }
    }
    return ds;
}

void
augmentBatch(Matrix &batch, const std::vector<int> &labels, int max_shift,
             Rng &rng)
{
    panic_if(batch.rows() != labels.size(), "augment label mismatch");
    panic_if(batch.cols() != static_cast<std::size_t>(N) * N,
             "augment expects %dx%d images", N, N);
    for (std::size_t r = 0; r < batch.rows(); ++r) {
        const int dx =
            static_cast<int>(rng.uniformInt(-max_shift, max_shift));
        const int dy =
            static_cast<int>(rng.uniformInt(-max_shift, max_shift));
        const bool mirror = rng.uniform() < 0.5;
        const std::vector<float> img =
            renderShape(labels[r], dx, dy, mirror, 0.05, rng);
        for (std::size_t c = 0; c < img.size(); ++c)
            batch.at(r, c) = img[c];
    }
}

} // namespace nn
} // namespace tb
