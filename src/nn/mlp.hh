/**
 * @file
 * A small multilayer perceptron: Dense+ReLU stacks with a linear head,
 * wired to the SGD optimizer. Enough model capacity to demonstrate the
 * Fig 5 claim (augmentation improves generalization).
 */

#ifndef TRAINBOX_NN_MLP_HH
#define TRAINBOX_NN_MLP_HH

#include <memory>
#include <vector>

#include "nn/layers.hh"
#include "nn/loss.hh"
#include "nn/optimizer.hh"

namespace tb {
namespace nn {

/** Dense -> ReLU -> ... -> Dense classifier. */
class Mlp
{
  public:
    /**
     * @param layer_sizes e.g. {256, 64, 8}: input 256, one hidden layer
     *                    of 64, 8 classes.
     */
    Mlp(const std::vector<std::size_t> &layer_sizes, Rng &rng,
        SgdOptimizer::Config opt = {});

    /** Logits for a batch. */
    Matrix forward(const Matrix &x);

    /**
     * One training step on a batch: forward, loss, backward, update.
     * @return the batch's mean cross-entropy loss.
     */
    double trainStep(const Matrix &x, const std::vector<int> &labels);

    std::size_t numClasses() const;
    std::size_t inputSize() const;

    /** Total learnable parameters. */
    std::size_t numParameters() const;

  private:
    std::vector<DenseLayer> dense_;
    std::vector<ReluLayer> relus_;
    SgdOptimizer opt_;
};

} // namespace nn
} // namespace tb

#endif // TRAINBOX_NN_MLP_HH
