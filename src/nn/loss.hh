/**
 * @file
 * Softmax cross-entropy loss and accuracy metrics.
 */

#ifndef TRAINBOX_NN_LOSS_HH
#define TRAINBOX_NN_LOSS_HH

#include <cstdint>
#include <vector>

#include "nn/tensor.hh"

namespace tb {
namespace nn {

/** Loss value plus the gradient w.r.t. the logits. */
struct LossResult
{
    double loss = 0.0;   ///< mean cross-entropy over the batch
    Matrix gradient;     ///< dL/dlogits (already divided by batch)
};

/** Softmax + cross-entropy against integer labels. */
LossResult softmaxCrossEntropy(const Matrix &logits,
                               const std::vector<int> &labels);

/** Row-wise softmax probabilities. */
Matrix softmax(const Matrix &logits);

/** Fraction of rows whose top prediction matches the label. */
double accuracy(const Matrix &logits, const std::vector<int> &labels);

/** Fraction of rows whose label is within the top-k predictions. */
double topKAccuracy(const Matrix &logits, const std::vector<int> &labels,
                    std::size_t k);

} // namespace nn
} // namespace tb

#endif // TRAINBOX_NN_LOSS_HH
