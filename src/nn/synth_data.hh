/**
 * @file
 * Synthetic shape-classification dataset for the Fig 5 experiment.
 *
 * Eight pattern classes rendered into 16x16 grayscale images. Training
 * items are drawn near-canonical (centered, small pixel noise); test
 * items carry random translations and mirroring. Augmentation (random
 * shift + mirror + noise at training time — exactly the paper's examples
 * of data augmentation) closes the distribution gap, so the experiment
 * reproduces the paper's claim that augmentation buys a large accuracy
 * margin on unseen data.
 */

#ifndef TRAINBOX_NN_SYNTH_DATA_HH
#define TRAINBOX_NN_SYNTH_DATA_HH

#include <vector>

#include "nn/tensor.hh"

namespace tb {
namespace nn {

/** Canvas side length of the shape images. */
inline constexpr int kShapeImageSize = 16;

/** Number of classes (see shapeName). */
inline constexpr int kNumShapeClasses = 8;

/** Class names (square, disk, plus, cross, hstripes, vstripes, ring,
 *  checker). */
const char *shapeName(int label);

/** One dataset split: row-per-sample features plus labels. */
struct ShapeDataset
{
    Matrix inputs;            // N x 256, values in [0,1]
    std::vector<int> labels;  // N

    std::size_t size() const { return labels.size(); }
};

/** Deterministic canonical rendering of a class (no jitter). */
std::vector<float> renderShape(int label, int dx, int dy, bool mirror,
                               double noise_stddev, Rng &rng);

/**
 * Training split: @p per_class near-canonical samples per class
 * (no translation, tiny noise).
 */
ShapeDataset makeTrainSet(int per_class, Rng &rng);

/**
 * Test split: @p per_class samples per class with random translation in
 * [-max_shift, max_shift], random mirroring, and pixel noise — the
 * "unseen data" augmentation is meant to cover.
 */
ShapeDataset makeTestSet(int per_class, int max_shift, Rng &rng);

/**
 * Augment a training batch in place: random shift/mirror/noise per row
 * (the run-time augmentation whose cost TrainBox offloads).
 */
void augmentBatch(Matrix &batch, const std::vector<int> &labels,
                  int max_shift, Rng &rng);

} // namespace nn
} // namespace tb

#endif // TRAINBOX_NN_SYNTH_DATA_HH
